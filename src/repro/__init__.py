"""ITDOS reproduction: heterogeneous intrusion-tolerant CORBA middleware.

Reproduces "Developing a Heterogeneous Intrusion Tolerant CORBA System"
(Sames, Matt, Niebuhr, Tally, Whitmore, Bakken — DSN 2002) as a complete
Python library. Top-level layout:

* :mod:`repro.sim` — deterministic discrete-event network simulation
* :mod:`repro.crypto` — signatures, authenticated encryption, threshold DPRF
* :mod:`repro.giop` — CDR/GIOP marshalling, IDL types, platform profiles
* :mod:`repro.bft` — Castro–Liskov PBFT (the Secure Reliable Multicast)
* :mod:`repro.orb` — the CORBA-like ORB and the plain-IIOP baseline
* :mod:`repro.itdos` — the paper's contribution (start at
  :class:`repro.itdos.ItdosSystem`)
* :mod:`repro.baselines`, :mod:`repro.workloads`, :mod:`repro.metrics` —
  comparison systems and the benchmark harness support

See README.md for a guided tour, DESIGN.md for the system inventory, and
EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"
