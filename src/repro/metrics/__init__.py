"""Measurement utilities for the benchmark harness."""

from repro.metrics.collectors import LatencyRecorder, NetworkSnapshot, snapshot_network
from repro.metrics.stats import mean, percentile, summarize

__all__ = [
    "LatencyRecorder",
    "NetworkSnapshot",
    "mean",
    "percentile",
    "snapshot_network",
    "summarize",
]
