"""Collectors: simulated-time latencies and network traffic deltas."""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.stats import summarize
from repro.sim.network import Network


class LatencyRecorder:
    """Records (simulated) durations of operations."""

    def __init__(self) -> None:
        self.samples: list[float] = []
        self._open: dict[object, float] = {}

    def start(self, key: object, now: float) -> None:
        self._open[key] = now

    def stop(self, key: object, now: float) -> float:
        try:
            start = self._open.pop(key)
        except KeyError:
            known = sorted(repr(k) for k in self._open)
            raise KeyError(
                f"stop({key!r}): no start() recorded for this key; "
                f"open keys: [{', '.join(known)}]"
            ) from None
        duration = now - start
        self.samples.append(duration)
        return duration

    def cancel(self, key: object) -> bool:
        """Abandon an open operation without recording a sample."""
        return self._open.pop(key, None) is not None

    def record(self, duration: float) -> None:
        self.samples.append(duration)

    def summary(self) -> dict[str, float]:
        return summarize(self.samples)


@dataclass(frozen=True)
class NetworkSnapshot:
    """Point-in-time copy of network traffic counters."""

    messages_sent: int
    messages_delivered: int
    messages_dropped: int
    bytes_sent: int
    multicasts_sent: int
    now: float

    def delta(self, later: "NetworkSnapshot") -> "NetworkSnapshot":
        """Traffic between this snapshot and ``later``."""
        return NetworkSnapshot(
            messages_sent=later.messages_sent - self.messages_sent,
            messages_delivered=later.messages_delivered - self.messages_delivered,
            messages_dropped=later.messages_dropped - self.messages_dropped,
            bytes_sent=later.bytes_sent - self.bytes_sent,
            multicasts_sent=later.multicasts_sent - self.multicasts_sent,
            now=later.now - self.now,
        )


def snapshot_network(network: Network) -> NetworkSnapshot:
    stats = network.stats
    return NetworkSnapshot(
        messages_sent=stats.messages_sent,
        messages_delivered=stats.messages_delivered,
        messages_dropped=stats.messages_dropped,
        bytes_sent=stats.bytes_sent,
        multicasts_sent=stats.multicasts_sent,
        now=network.now,
    )
