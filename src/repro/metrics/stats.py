"""Small statistics helpers (no numpy dependency in the library core)."""

from __future__ import annotations


def mean(values: list[float]) -> float:
    if not values:
        raise ValueError("mean of empty list")
    return sum(values) / len(values)


def percentile(values: list[float], p: float) -> float:
    """Linear-interpolated percentile, ``p`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty list")
    if not 0 <= p <= 100:
        raise ValueError("p must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


#: What ``summarize`` returns for an empty sample list. ``mean`` and
#: ``percentile`` still raise on empty input — only the aggregate summary
#: treats "no samples yet" as a reportable state rather than an error.
EMPTY_SUMMARY = {
    "count": 0.0,
    "mean": 0.0,
    "p50": 0.0,
    "p95": 0.0,
    "p99": 0.0,
    "min": 0.0,
    "max": 0.0,
}


def summarize(values: list[float]) -> dict[str, float]:
    """mean/p50/p95/p99/min/max in one dict (for bench tables)."""
    if not values:
        return dict(EMPTY_SUMMARY)
    return {
        "count": float(len(values)),
        "mean": mean(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "min": min(values),
        "max": max(values),
    }
