"""Small statistics helpers (no numpy dependency in the library core)."""

from __future__ import annotations


def mean(values: list[float]) -> float:
    if not values:
        raise ValueError("mean of empty list")
    return sum(values) / len(values)


def percentile(values: list[float], p: float) -> float:
    """Linear-interpolated percentile, ``p`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty list")
    if not 0 <= p <= 100:
        raise ValueError("p must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def summarize(values: list[float]) -> dict[str, float]:
    """mean/p50/p95/p99/min/max in one dict (for bench tables)."""
    return {
        "count": float(len(values)),
        "mean": mean(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "min": min(values),
        "max": max(values),
    }
