"""Byte-by-byte voting: the baseline that fails under heterogeneity.

Immune [25], Rampart [35, 36], and the raw Castro–Liskov library [6] compare
replica outputs as raw bytes. With homogeneous replicas this is fine; with
heterogeneous replicas, equal *values* marshal to different *bytes* (byte
order) and equal-up-to-precision floats differ bit-wise, so correct replicas
look like dissenters. Experiment E3 measures the resulting failure rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class ByteVoteDecision:
    decided: bool
    value: bytes | None = None
    supporters: tuple[str, ...] = ()
    dissenters: tuple[str, ...] = ()


def byte_majority_vote(
    ballots: list[tuple[str, bytes]], threshold: int
) -> ByteVoteDecision:
    """Find raw bytes supported by at least ``threshold`` senders."""
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    counts: dict[bytes, list[str]] = {}
    order: list[bytes] = []
    for sender, blob in ballots:
        if blob not in counts:
            counts[blob] = []
            order.append(blob)
        counts[blob].append(sender)
    for blob in order:
        supporters = counts[blob]
        if len(supporters) >= threshold:
            dissenters = tuple(
                sender for sender, b in ballots if b != blob
            )
            return ByteVoteDecision(
                decided=True,
                value=blob,
                supporters=tuple(supporters),
                dissenters=dissenters,
            )
    return ByteVoteDecision(decided=False)


class ByteVoter:
    """Drop-in replacement for the ITDOS reply voter, comparing raw bytes.

    Mirrors :class:`repro.itdos.voter.ReplyVoter`'s decision thresholds
    (f+1 identical) but at the byte level — *before* unmarshalling, which is
    exactly what the paper says cannot work for heterogeneous domains.
    """

    def __init__(
        self,
        n: int,
        f: int,
        on_decide: Callable[[ByteVoteDecision], None],
    ) -> None:
        self.n = n
        self.f = f
        self.on_decide = on_decide
        self.current_request_id: int | None = None
        self._ballots: list[tuple[str, bytes]] = []
        self._decided = False
        self.undecidable_requests = 0

    def begin(self, request_id: int) -> None:
        self.current_request_id = request_id
        self._ballots = []
        self._decided = False

    def offer(self, sender: str, request_id: int, blob: bytes) -> None:
        if request_id != self.current_request_id or self._decided:
            return
        self._ballots.append((sender, blob))
        decision = byte_majority_vote(self._ballots, self.f + 1)
        if decision.decided:
            self._decided = True
            self.on_decide(decision)
        elif len(self._ballots) >= self.n:
            # Every replica answered and still no f+1 identical byte
            # strings: the byte voter is stuck (the E3 failure mode).
            self.undecidable_requests += 1
