"""Key-exposure models: traditional vs threshold Group Manager (§3.5).

The paper's argument: in a *traditional* design "each of the Group Manager
replication domain elements agree on each communication key and distribute
the entire key"; compromising **one** element exposes every key it knows.
The ITDOS design gives each element only a DPRF share, so an attacker needs
``f+1`` elements. These two classes model exactly the attacker-knowledge
computation for experiment E5 — with real key material, derived the same
way each design would derive it.
"""

from __future__ import annotations

import random

from repro.crypto.digests import digest
from repro.crypto.dprf import DprfError, DprfPublic, DprfShareholder, combine_shares, dprf_setup
from repro.crypto.groups import DlGroup


class TraditionalKeyAuthority:
    """Every GM element stores every full communication key."""

    def __init__(self, element_ids: list[str], seed: int = 0) -> None:
        self.element_ids = list(element_ids)
        self._rng = random.Random(seed)
        # key_id -> key material, replicated at every element.
        self._keys: dict[int, bytes] = {}
        self._next = 0

    def generate_key(self) -> int:
        """Agree on a new communication key (full key at every element)."""
        self._next += 1
        self._keys[self._next] = self._rng.randbytes(32)
        return self._next

    def key_material(self, key_id: int) -> bytes:
        return self._keys[key_id]

    def keys_recoverable_by(self, compromised: set[str]) -> set[int]:
        """Which keys does an attacker holding these elements learn?"""
        if any(e in self.element_ids for e in compromised):
            return set(self._keys)  # one element knows everything
        return set()


class ThresholdKeyAuthority:
    """ITDOS's design: per-element DPRF shares, combination needs f+1."""

    def __init__(
        self, element_ids: list[str], f: int, group: DlGroup, seed: int = 0
    ) -> None:
        if len(element_ids) < 3 * f + 1:
            raise ValueError("need 3f+1 GM elements")
        self.element_ids = list(element_ids)
        self.f = f
        rng = random.Random(seed)
        self.public: DprfPublic
        holders: list[DprfShareholder]
        self.public, holders = dprf_setup(group, n=len(element_ids), f=f, rng=rng)
        self._holders = dict(zip(self.element_ids, holders))
        self._nonces: dict[int, bytes] = {}
        self._next = 0

    def generate_key(self) -> int:
        """Allocate a new key (identified by its evaluation nonce)."""
        self._next += 1
        self._nonces[self._next] = digest(b"key-nonce-%d" % self._next)
        return self._next

    def key_material(self, key_id: int) -> bytes:
        nonce = self._nonces[key_id]
        shares = [
            self._holders[e].evaluate(nonce)
            for e in self.element_ids[: self.f + 1]
        ]
        return combine_shares(self.public, nonce, shares).material

    def keys_recoverable_by(self, compromised: set[str]) -> set[int]:
        """An attacker combines the shares it holds — or fails below f+1."""
        holders = [self._holders[e] for e in compromised if e in self._holders]
        recovered = set()
        for key_id, nonce in self._nonces.items():
            shares = [h.evaluate(nonce) for h in holders]
            try:
                combine_shares(self.public, nonce, shares)
            except DprfError:
                continue
            recovered.add(key_id)
        return recovered
