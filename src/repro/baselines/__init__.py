"""Baselines the paper compares ITDOS against.

* :mod:`~repro.baselines.byte_voter` — Immune/Rampart-style byte-by-byte
  voting on raw marshalled messages, which "does not work correctly in the
  presence of heterogeneity or inexact values" (§3.6, experiment E3);
* :mod:`~repro.baselines.traditional_gm` — the "traditional" Group Manager
  design of §3.5, where every GM element knows each full communication key,
  so one compromise exposes everything (experiment E5);
* :mod:`~repro.baselines.plain_iiop` — the unreplicated CORBA baseline
  (no ordering, no voting, no encryption) used to price intrusion tolerance
  (experiment E10).
"""

from repro.baselines.byte_voter import ByteVoter, byte_majority_vote
from repro.baselines.traditional_gm import (
    ThresholdKeyAuthority,
    TraditionalKeyAuthority,
)
from repro.orb.iiop import IiopClient, IiopServer

__all__ = [
    "ByteVoter",
    "IiopClient",
    "IiopServer",
    "ThresholdKeyAuthority",
    "TraditionalKeyAuthority",
    "byte_majority_vote",
]
