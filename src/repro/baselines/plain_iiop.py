"""The unreplicated IIOP baseline, re-exported for benchmark symmetry.

The implementation lives in :mod:`repro.orb.iiop`; this module exists so
benchmarks import every baseline from :mod:`repro.baselines`.
"""

from repro.orb.iiop import IiopClient, IiopServer, IiopTransport

__all__ = ["IiopClient", "IiopServer", "IiopTransport"]
