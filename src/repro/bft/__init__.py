"""Castro–Liskov Practical Byzantine Fault Tolerance.

ITDOS's Secure Reliable Multicast layer is "the BFT mechanism developed by
Miguel Castro and Barbara Liskov" [6, 7] (§3.1). This package implements the
protocol over the deterministic simulator:

* the three-phase normal case (pre-prepare / prepare / commit) with quorum
  size ``2f+1`` out of ``n >= 3f+1`` replicas;
* client request retransmission and ``f+1`` matching-reply acceptance;
* periodic checkpoints with ``2f+1`` checkpoint quorums, log garbage
  collection, and a sliding watermark window;
* view changes with prepared-certificate carry-over, so a faulty primary
  cannot halt the system;
* state transfer, so a replica that missed a stable checkpoint can fetch the
  application state and rejoin;
* pluggable message authentication (none / pairwise HMAC / RSA signatures),
  mirroring the paper's split between cheap authenticators and transferable
  signatures.

The replica's *application* is an upcall — ITDOS plugs its message-queue
state machine in here, turning the request/response protocol into a message
passing transport exactly as §3.1 describes.
"""

from repro.bft.auth import HmacAuth, MessageAuth, NullAuth, RsaAuth
from repro.bft.client import BftClient, BftClientEngine
from repro.bft.config import BftConfig
from repro.bft.messages import (
    BatchMsg,
    BftReply,
    CheckpointMsg,
    ClientRequest,
    CommitMsg,
    FillMsg,
    NewViewMsg,
    PrepareMsg,
    PrePrepareMsg,
    StateRequestMsg,
    StateResponseMsg,
    StatusMsg,
    ViewChangeMsg,
)
from repro.bft.replica import BftReplica, build_group

__all__ = [
    "BatchMsg",
    "BftClient",
    "BftClientEngine",
    "BftConfig",
    "BftReplica",
    "BftReply",
    "CheckpointMsg",
    "ClientRequest",
    "CommitMsg",
    "FillMsg",
    "HmacAuth",
    "MessageAuth",
    "NewViewMsg",
    "NullAuth",
    "PrePrepareMsg",
    "PrepareMsg",
    "RsaAuth",
    "StateRequestMsg",
    "StateResponseMsg",
    "StatusMsg",
    "ViewChangeMsg",
    "build_group",
]
