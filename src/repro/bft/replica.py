"""The PBFT replica state machine.

One :class:`BftReplica` is one member of a replication group ordering client
requests. The normal-case flow:

1. the primary assigns a sequence number and multicasts PRE-PREPARE;
2. backups multicast PREPARE; a request is *prepared* at a replica once it
   holds the pre-prepare plus ``2f`` matching prepares;
3. prepared replicas multicast COMMIT; with ``2f+1`` matching commits the
   request is *committed-local* and executes in sequence order;
4. each replica sends its REPLY directly to the client.

Checkpoints every ``k`` executions garbage-collect the log; view changes
replace an unresponsive primary; state transfer catches up replicas that
missed a stable checkpoint. The application is a pluggable upcall — ITDOS
installs its message-queue state machine here (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.bft.auth import MessageAuth, NullAuth
from repro.bft.config import BftConfig
from repro.bft.messages import (
    BatchMsg,
    BftReply,
    CheckpointMsg,
    ClientRequest,
    CommitMsg,
    FillMsg,
    NewViewMsg,
    PreparedCertificate,
    PrepareMsg,
    PrePrepareMsg,
    StateRequestMsg,
    StateResponseMsg,
    StatusMsg,
    ViewChangeMsg,
)
from repro.crypto.digests import digest
from repro.sim.process import Process
from repro.sim.scheduler import TimerHandle

NULL_CLIENT = "__null__"

ExecuteFn = Callable[[bytes, int, str, int], bytes]
SnapshotFn = Callable[[], bytes]
RestoreFn = Callable[[bytes, int], None]


def _default_execute(payload: bytes, seq: int, client_id: str, timestamp: int) -> bytes:
    """Echo application used by tests when no app is installed."""
    return b"ok:" + payload


@dataclass
class _LogEntry:
    """Per-sequence-number protocol state."""

    pre_prepare: PrePrepareMsg | None = None
    prepares: dict[str, PrepareMsg] = field(default_factory=dict)
    commits: dict[str, CommitMsg] = field(default_factory=dict)
    prepared: bool = False
    committed: bool = False
    executed: bool = False
    commit_sent: bool = False
    # Our own contribution messages, kept so retransmission ticks and
    # duplicate pre-prepares re-send the identical (cache-hitting) form
    # instead of rebuilding and re-stamping it.
    own_prepare: PrepareMsg | None = None
    own_commit: CommitMsg | None = None
    # Phase entry times (telemetry only; 0.0 = phase not observed locally).
    t_pre_prepare: float = 0.0
    t_prepared: float = 0.0

    def matching_prepares(self, view: int, request_digest: bytes) -> int:
        return sum(
            1
            for p in self.prepares.values()
            if p.view == view and p.request_digest == request_digest
        )

    def matching_commits(self, view: int, request_digest: bytes) -> int:
        return sum(
            1
            for c in self.commits.values()
            if c.view == view and c.request_digest == request_digest
        )


class BftReplica(Process):
    """One replica of a Castro–Liskov replication group."""

    def __init__(
        self,
        pid: str,
        config: BftConfig,
        execute_fn: ExecuteFn | None = None,
        snapshot_fn: SnapshotFn | None = None,
        restore_fn: RestoreFn | None = None,
        auth: MessageAuth | None = None,
        client_auth: MessageAuth | None = None,
    ) -> None:
        super().__init__(pid)
        if pid not in config.replica_ids:
            raise ValueError(f"{pid!r} is not in the replica set")
        self.config = config
        self.execute_fn = execute_fn or _default_execute
        self.snapshot_fn = snapshot_fn or (lambda: b"")
        self.restore_fn = restore_fn or (lambda snapshot, seq: None)
        # Replica-to-replica protocol authentication (MAC vectors or RSA),
        # and a separate policy for client requests — in PBFT clients sign
        # requests independently of the inter-replica authenticators.
        self.auth = auth or NullAuth()
        self.client_auth = client_auth or NullAuth()

        self.view = 0
        self.next_seq = 0  # last sequence number assigned (primary only)
        self.last_executed = 0
        self.stable_seq = 0
        self.log: dict[int, _LogEntry] = {}
        # Requests delivered but not orderable yet (view change in flight).
        self.pending_requests: list[ClientRequest] = []
        # Primary-side batch accumulator: requests waiting for the current
        # batch to fill, its delay timer to fire, or the pipeline window /
        # watermark window to free a sequence number.
        self._batch: list[ClientRequest] = []
        self._batch_digests: set[bytes] = set()
        self._batch_timer: TimerHandle | None = None
        # client_id -> (timestamp, cached BftReply) of last executed request.
        self.client_table: dict[str, tuple[int, BftReply | None]] = {}
        # Checkpoint messages by seq then sender.
        self._checkpoints: dict[int, dict[str, CheckpointMsg]] = {}
        # Our own snapshots by seq, retained until superseded.
        self._own_snapshots: dict[int, bytes] = {}
        self._stable_proof: tuple[CheckpointMsg, ...] = ()
        self._stable_snapshot: bytes = b""
        # View change machinery.
        self.in_view_change = False
        self._view_changes: dict[int, dict[str, ViewChangeMsg]] = {}
        self._vc_timer: TimerHandle | None = None
        # Consecutive view changes without an intervening execution; the
        # view-change timeout doubles with it so a lossy period escalates
        # to long patience instead of thrashing through views.
        self._consecutive_view_changes = 0
        self._awaiting: set[bytes] = set()  # request digests awaiting execution
        self._future: list[tuple[str, Any]] = []  # messages for future views
        self._state_transfer_pending = False
        self._state_transfer_started = 0.0
        self._state_transfer_proof: tuple[CheckpointMsg, ...] = ()
        self._state_transfer_attempt = 0
        # Retransmission machinery (lossy links): periodically re-multicast
        # our protocol messages for unfinished work, as the Castro–Liskov
        # library's status/retransmission mechanism does.
        self._last_view_change: ViewChangeMsg | None = None
        self._last_new_view: NewViewMsg | None = None
        self._retransmit_timer: TimerHandle | None = None
        # Observability.
        self.messages_sent: dict[str, int] = {}
        self.executions: list[tuple[int, str, int]] = []  # (seq, client, timestamp)
        self.order_journal: list[tuple[int, bytes]] = []  # (seq, batch digest)

    # ---------------------------------------------------------------- utils

    @property
    def primary(self) -> str:
        return self.config.primary_of_view(self.view)

    @property
    def is_primary(self) -> bool:
        return self.primary == self.pid

    @property
    def high_watermark(self) -> int:
        return self.stable_seq + self.config.log_window

    def _entry(self, seq: int) -> _LogEntry:
        if seq not in self.log:
            self.log[seq] = _LogEntry()
        return self.log[seq]

    def _count(self, label: str) -> None:
        self.messages_sent[label] = self.messages_sent.get(label, 0) + 1
        t = self.telemetry
        if t.enabled:
            t.registry.counter(
                "bft_messages_total",
                "Protocol messages sent, by group and message type",
                labels=("group", "type"),
            ).labels(group=self.config.address, type=label).inc()

    def _mcast(self, message: Any) -> None:
        stamped = self.auth.stamp(message, list(self.config.replica_ids))
        self._count(type(message).__name__)
        self.multicast(self.config.address, stamped)

    def _p2p(self, dst: str, message: Any) -> None:
        stamped = self.auth.stamp(message, [dst])
        self._count(type(message).__name__)
        self.send(dst, stamped)

    # ------------------------------------------------------------- dispatch

    def on_message(self, src: str, payload: Any) -> None:
        if self._retransmit_timer is None:
            self._schedule_retransmit()
        checker = self.client_auth if isinstance(payload, ClientRequest) else self.auth
        if src != self.pid and not checker.accept(src, payload):
            t = self.telemetry
            if t.enabled:
                # Soft evidence only: a bad MAC/signature is indistinguishable
                # from wire corruption of an honest sender's message.
                reason = getattr(checker, "last_reject_reason", "") or "rejected"
                t.evidence(
                    "invalid-auth",
                    accused=src,
                    reporter=self.pid,
                    detail=f"{type(payload).__name__}: {reason}",
                )
                t.detect.observe_auth_reject(src, reason)
            return
        handler = {
            ClientRequest: self._on_client_request,
            PrePrepareMsg: self._on_pre_prepare,
            PrepareMsg: self._on_prepare,
            CommitMsg: self._on_commit,
            CheckpointMsg: self._on_checkpoint,
            ViewChangeMsg: self._on_view_change,
            NewViewMsg: self._on_new_view,
            StateRequestMsg: self._on_state_request,
            StateResponseMsg: self._on_state_response,
            StatusMsg: self._on_status,
            FillMsg: self._on_fill,
        }.get(type(payload))
        if handler is not None:
            handler(src, payload)

    def on_restart(self) -> None:
        """Reboot bookkeeping: timer handles died with the restart, so drop
        them; the retransmission tick re-arms on the next delivery."""
        self._retransmit_timer = None
        self._vc_timer = None
        self._batch_timer = None
        self._state_transfer_pending = False

    # --------------------------------------------------- retransmission tick

    def _schedule_retransmit(self) -> None:
        self._retransmit_timer = self.set_timer(
            self.config.view_change_timeout, self._retransmit_tick
        )

    def _retransmit_tick(self) -> None:
        """Re-multicast our protocol messages for work that is stuck.

        Message loss can starve any quorum; periodic retransmission of
        *our own* last contribution per unfinished item restores liveness
        without changing safety (all messages are idempotent at receivers).
        """
        self._schedule_retransmit()
        if self.crashed:
            return
        if self.in_view_change and self._last_view_change is not None:
            self._mcast(self._last_view_change)
            return
        # A batch stranded by a restart or a re-gained window: force it out.
        if self._batch:
            self._maybe_flush(force=True)
        # Unexecuted log entries: re-send our contribution for the lowest
        # few, reusing the stored message objects so the auth layer's
        # stamped-form cache hits instead of re-MACing every tick.
        pending = sorted(
            seq for seq, entry in self.log.items()
            if entry.pre_prepare is not None and not entry.executed
        )[:4]
        for seq in pending:
            entry = self.log[seq]
            pre_prepare = entry.pre_prepare
            assert pre_prepare is not None
            if pre_prepare.view != self.view:
                continue
            if self.is_primary:
                self._mcast(pre_prepare)
            else:
                self._mcast(
                    entry.own_prepare
                    or PrepareMsg(
                        view=pre_prepare.view,
                        seq=seq,
                        request_digest=pre_prepare.request_digest,
                        sender=self.pid,
                    )
                )
            if entry.commit_sent:
                self._mcast(
                    entry.own_commit
                    or CommitMsg(
                        view=pre_prepare.view,
                        seq=seq,
                        request_digest=pre_prepare.request_digest,
                        sender=self.pid,
                    )
                )
        # Own checkpoints that have not stabilised yet.
        for seq in sorted(self._own_snapshots):
            if seq > self.stable_seq:
                self._mcast(
                    CheckpointMsg(
                        seq=seq,
                        state_digest=digest(self._own_snapshots[seq]),
                        sender=self.pid,
                    )
                )
        # A stalled state transfer: retry with the next candidate.
        if self._state_transfer_pending and (
            self.now - self._state_transfer_started
            > 2 * self.config.view_change_timeout
        ):
            self._state_transfer_pending = False
            if self._state_transfer_proof:
                self._request_state_transfer(
                    max(c.seq for c in self._state_transfer_proof),
                    self._state_transfer_proof,
                )
        # Status beacon: lets peers that are ahead fill our log gaps.
        self._mcast(
            StatusMsg(
                view=self.view,
                last_executed=self.last_executed,
                stable_seq=self.stable_seq,
                sender=self.pid,
            )
        )

    # ----------------------------------------------------- status / log fill

    def _on_status(self, src: str, msg: StatusMsg) -> None:
        if msg.sender != src or msg.last_executed >= self.last_executed:
            return
        if msg.last_executed < self.stable_seq:
            # The peer is behind our stable checkpoint: entries below it are
            # garbage-collected here, so it needs the full state snapshot
            # (entries above the checkpoint can still be filled afterwards).
            self._on_state_request(
                src, StateRequestMsg(low_seq=self.stable_seq, sender=src)
            )
        entries = []
        low = max(msg.last_executed, self.stable_seq)
        for seq in range(low + 1, min(self.last_executed, low + 8) + 1):
            entry = self.log.get(seq)
            if entry is None or not entry.executed or entry.pre_prepare is None:
                break
            matching = tuple(
                c
                for c in entry.commits.values()
                if c.request_digest == entry.pre_prepare.request_digest
            )
            if len(matching) < self.config.quorum:
                break
            entries.append((entry.pre_prepare, matching[: self.config.quorum]))
        if entries:
            self._p2p(src, FillMsg(entries=tuple(entries), sender=self.pid))

    def _on_fill(self, src: str, msg: FillMsg) -> None:
        if msg.sender != src:
            return
        for pre_prepare, commits in msg.entries:
            seq = pre_prepare.seq
            if seq <= self.last_executed:
                continue
            if seq > self.high_watermark:
                # The log is a bounded buffer: a replica this far behind its
                # own stable checkpoint must catch up through checkpoint
                # stabilization or state transfer, not by growing the log
                # past the window.
                continue
            # Validate the commit certificate: 2f+1 distinct replicas over
            # the pre-prepare's digest, each individually authentic.
            if pre_prepare.request_digest != pre_prepare.batch.content_digest():
                return
            senders = set()
            for commit in commits:
                if commit.request_digest != pre_prepare.request_digest:
                    return
                if commit.sender not in self.config.replica_ids:
                    return
                if commit.sender != self.pid and not self.auth.accept(
                    commit.sender, commit
                ):
                    return
                senders.add(commit.sender)
            if len(senders) < self.config.quorum:
                return
            entry = self._entry(seq)
            entry.pre_prepare = pre_prepare
            entry.prepared = True
            entry.committed = True
            entry.commit_sent = True
            for commit in commits:
                entry.commits[commit.sender] = commit
        self._try_execute()

    # ------------------------------------------------------ client requests

    def _on_client_request(self, src: str, request: ClientRequest) -> None:
        last = self.client_table.get(request.client_id)
        if last is not None and request.timestamp <= last[0]:
            # Already executed: retransmit the cached reply (at-most-once).
            if request.timestamp == last[0] and last[1] is not None:
                self._p2p(request.client_id, last[1])
                # Let the application layer retransmit ITS reply too (ITDOS
                # replies travel separately from the BFT-level ack, §3.1).
                self.on_duplicate_request(request)
            return
        request_digest = request.content_digest()
        if request_digest not in self._awaiting:
            self._awaiting.add(request_digest)
            self._ensure_vc_timer()
        if self.in_view_change:
            self.pending_requests.append(request)
            return
        if self.is_primary:
            self._order(request)
        elif src == request.client_id:
            # Backup: relay to the primary so a client that only knows one
            # replica still makes progress; keep our own copy pending.
            self._p2p(self.primary, request)

    def _order(self, request: ClientRequest) -> None:
        """Primary: queue the request for the next batch and maybe flush."""
        request_digest = request.content_digest()
        if request_digest in self._batch_digests:
            return  # already queued for an upcoming batch
        # Don't order the same request twice — but re-multicast the original
        # pre-prepare, which may have been lost at some backups.
        for entry in self.log.values():
            if (
                entry.pre_prepare is not None
                and not entry.executed
                and any(
                    r.content_digest() == request_digest
                    for r in entry.pre_prepare.batch.requests
                )
            ):
                if entry.pre_prepare.view == self.view:
                    self._mcast(entry.pre_prepare)
                return
        self._batch.append(request)
        self._batch_digests.add(request_digest)
        self._maybe_flush()

    def _can_assign(self) -> bool:
        """May the primary put another sequence number in flight?"""
        if self.next_seq + 1 > self.high_watermark:
            return False
        window = self.config.pipeline_window
        if window and self.next_seq - self.last_executed >= window:
            return False
        return True

    def _maybe_flush(self, force: bool = False) -> None:
        """Emit as many batches as the pipeline allows.

        An under-full batch waits for ``batch_delay`` (zero-delay timers
        still coalesce every same-tick arrival, thanks to the scheduler's
        FIFO tie-break) unless ``force`` is set. Requests that the
        watermark or pipeline window keeps out stay queued here and flush
        when :meth:`_try_execute` or :meth:`_stabilize` frees a slot.
        """
        if not self.is_primary or self.in_view_change:
            return
        while self._batch and self._can_assign():
            if len(self._batch) < self.config.batch_size and not force:
                self._arm_batch_timer()
                return
            count = min(len(self._batch), self.config.batch_size)
            chunk, self._batch = self._batch[:count], self._batch[count:]
            for request in chunk:
                self._batch_digests.discard(request.content_digest())
            self._emit_batch(tuple(chunk))
        if not self._batch and self._batch_timer is not None:
            self.cancel_timer(self._batch_timer)
            self._batch_timer = None

    def _arm_batch_timer(self) -> None:
        if self._batch_timer is None:
            self._batch_timer = self.set_timer(
                self.config.batch_delay, self._on_batch_timeout
            )

    def _on_batch_timeout(self) -> None:
        self._batch_timer = None
        self._maybe_flush(force=True)

    def _emit_batch(self, requests: tuple[ClientRequest, ...]) -> None:
        """Assign the next sequence number to one batch and pre-prepare."""
        batch = BatchMsg(requests=requests)
        self.next_seq += 1
        pre_prepare = PrePrepareMsg(
            view=self.view,
            seq=self.next_seq,
            request_digest=batch.content_digest(),
            batch=batch,
            sender=self.pid,
        )
        t = self.telemetry
        if t.enabled:
            for request in requests:
                ctx = t.lookup(request.content_digest())
                if ctx is not None:
                    t.point(
                        "bft.pre_prepare",
                        parent=ctx,
                        pid=self.pid,
                        seq=self.next_seq,
                        view=self.view,
                    )
            t.registry.histogram(
                "bft_batch_size",
                "Requests per ordered batch",
                labels=("group",),
            ).labels(group=self.config.address).observe(float(len(requests)))
            t.registry.histogram(
                "bft_pipeline_occupancy",
                "In-flight sequence numbers when a batch is emitted",
                labels=("group",),
            ).labels(group=self.config.address).observe(
                float(self.next_seq - self.last_executed)
            )
        self._mcast(pre_prepare)

    def on_duplicate_request(self, request: ClientRequest) -> None:
        """Hook: a fully executed request was retransmitted. Subclasses may
        resend application-level replies; the base replica does nothing."""

    def _drain_pending(self) -> None:
        pending, self.pending_requests = self.pending_requests, []
        for request in pending:
            self._on_client_request(self.pid, request)

    def _fold_batch_into_pending(self) -> None:
        """Return accumulated-but-unordered requests to the pending list."""
        if self._batch:
            self.pending_requests.extend(self._batch)
            self._batch = []
            self._batch_digests.clear()
        if self._batch_timer is not None:
            self.cancel_timer(self._batch_timer)
            self._batch_timer = None

    # ------------------------------------------------------ three-phase core

    def _on_pre_prepare(self, src: str, msg: PrePrepareMsg) -> None:
        if msg.view > self.view:
            self._future.append((src, msg))
            return
        if self.in_view_change or msg.view != self.view:
            return
        if src != self.config.primary_of_view(msg.view):
            return
        if not self.stable_seq < msg.seq <= self.high_watermark:
            return
        if msg.request_digest != msg.batch.content_digest():
            # The header digest disagrees with the batch it carries. Soft
            # evidence: with authenticated channels only the primary can
            # produce this, but we cannot rule out wire corruption here.
            t = self.telemetry
            if t.enabled:
                t.evidence(
                    "inconsistent-preprepare",
                    accused=src,
                    reporter=self.pid,
                    detail=f"view={msg.view} seq={msg.seq}",
                    evidence={"claimed_digest": msg.request_digest},
                )
            return
        entry = self._entry(msg.seq)
        if entry.executed:
            # Executed history is immutable. A new-view primary that lost the
            # prepared certificate for this sequence (restarted peers, n-f
            # amnesia) may re-issue a *different* pre-prepare for it at a
            # higher view; accepting it would rewrite the stored
            # pre-prepare/commit certificate — the very thing the status/fill
            # protocol serves to lagging replicas — while our execution (and
            # journal) keeps the original batch. Ignore it: lagging peers
            # catch up from the retained certificate via FillMsg instead.
            return
        if entry.pre_prepare is not None:
            if entry.pre_prepare.view >= msg.view:
                # Already accepted: a duplicate means the primary suspects
                # loss — re-contribute our prepare/commit for this entry.
                if (
                    entry.pre_prepare.view == msg.view
                    and entry.pre_prepare.request_digest == msg.request_digest
                    and not entry.executed
                ):
                    if not self.is_primary:
                        self._mcast(
                            entry.own_prepare
                            or PrepareMsg(
                                view=msg.view,
                                seq=msg.seq,
                                request_digest=msg.request_digest,
                                sender=self.pid,
                            )
                        )
                    if entry.commit_sent:
                        self._mcast(
                            entry.own_commit
                            or CommitMsg(
                                view=msg.view,
                                seq=msg.seq,
                                request_digest=msg.request_digest,
                                sender=self.pid,
                            )
                        )
                elif entry.pre_prepare.view == msg.view:
                    # Two internally-consistent pre-prepares for the same
                    # (view, seq) with different digests: hard evidence of an
                    # equivocating primary. Both messages passed the
                    # digest-vs-batch check, so no wire fault explains this —
                    # and both full encodings are retained so the conflict
                    # re-verifies offline.
                    t = self.telemetry
                    if t.enabled:
                        t.evidence(
                            "equivocation",
                            accused=src,
                            reporter=self.pid,
                            hard=True,
                            detail=f"view={msg.view} seq={msg.seq}",
                            evidence={
                                "accepted": entry.pre_prepare.canonical_encoding(),
                                "conflicting": msg.canonical_encoding(),
                                "accepted_digest": entry.pre_prepare.request_digest,
                                "conflicting_digest": msg.request_digest,
                            },
                        )
                return  # already accepted one for this (or a later) view
        entry.pre_prepare = msg
        entry.t_pre_prepare = self.now
        if not entry.executed:
            for request in msg.batch.requests:
                if request.client_id == NULL_CLIENT:
                    continue
                request_digest = request.content_digest()
                if request_digest not in self._awaiting:
                    self._awaiting.add(request_digest)
                    self._ensure_vc_timer()
        if not self.is_primary:
            prepare = PrepareMsg(
                view=msg.view,
                seq=msg.seq,
                request_digest=msg.request_digest,
                sender=self.pid,
            )
            entry.own_prepare = prepare
            self._mcast(prepare)
        self._check_prepared(msg.seq)
        self._check_committed(msg.seq)

    def _on_prepare(self, src: str, msg: PrepareMsg) -> None:
        if msg.view > self.view:
            self._future.append((src, msg))
            return
        if self.in_view_change or msg.view != self.view or msg.sender != src:
            return
        if not self.stable_seq < msg.seq <= self.high_watermark:
            return
        entry = self._entry(msg.seq)
        entry.prepares[src] = msg
        self._flag_digest_dissent(entry, src, msg, "conflicting-prepare")
        self._check_prepared(msg.seq)

    def _check_prepared(self, seq: int) -> None:
        entry = self.log.get(seq)
        if entry is None or entry.prepared or entry.pre_prepare is None:
            return
        pre_prepare = entry.pre_prepare
        # The primary's pre-prepare counts as its prepare; 2f more needed.
        count = entry.matching_prepares(pre_prepare.view, pre_prepare.request_digest)
        if count >= 2 * self.config.f:
            entry.prepared = True
            entry.t_prepared = self.now
            t = self.telemetry
            if t.enabled:
                t.detect.observe_phase(
                    self.pid, "prepare", self.now - (entry.t_pre_prepare or self.now)
                )
                for request in pre_prepare.batch.requests:
                    ctx = t.lookup(request.content_digest())
                    if ctx is not None:
                        t.record(
                            "bft.prepare",
                            entry.t_pre_prepare or self.now,
                            end=self.now,
                            parent=ctx,
                            pid=self.pid,
                            seq=seq,
                        )
            if not entry.commit_sent:
                entry.commit_sent = True
                commit = CommitMsg(
                    view=pre_prepare.view,
                    seq=seq,
                    request_digest=pre_prepare.request_digest,
                    sender=self.pid,
                )
                entry.own_commit = commit
                self._mcast(commit)
            self._check_committed(seq)

    def _on_commit(self, src: str, msg: CommitMsg) -> None:
        if msg.view > self.view:
            self._future.append((src, msg))
            return
        if self.in_view_change or msg.view != self.view or msg.sender != src:
            return
        if not self.stable_seq < msg.seq <= self.high_watermark:
            return
        entry = self._entry(msg.seq)
        entry.commits[src] = msg
        self._flag_digest_dissent(entry, src, msg, "conflicting-commit")
        self._check_committed(msg.seq)

    def _flag_digest_dissent(
        self, entry: _LogEntry, src: str, msg: Any, kind: str
    ) -> None:
        """A prepare/commit naming a different digest than the accepted
        pre-prepare for its slot. Soft evidence against the sender: it is
        equally consistent with an equivocating primary having fed *them*
        the other variant, so it never convicts on its own."""
        t = self.telemetry
        if not t.enabled:
            return
        pre_prepare = entry.pre_prepare
        if (
            pre_prepare is not None
            and pre_prepare.view == msg.view
            and pre_prepare.request_digest != msg.request_digest
        ):
            t.evidence(
                kind,
                accused=src,
                reporter=self.pid,
                detail=f"view={msg.view} seq={msg.seq}",
                evidence={
                    "accepted_digest": pre_prepare.request_digest,
                    "claimed_digest": msg.request_digest,
                },
            )

    def _check_committed(self, seq: int) -> None:
        entry = self.log.get(seq)
        if entry is None or entry.committed or not entry.prepared:
            return
        pre_prepare = entry.pre_prepare
        assert pre_prepare is not None
        if (
            entry.matching_commits(pre_prepare.view, pre_prepare.request_digest)
            >= self.config.quorum
        ):
            entry.committed = True
            t = self.telemetry
            if t.enabled:
                t.detect.observe_phase(
                    self.pid, "commit", self.now - (entry.t_prepared or self.now)
                )
                for request in pre_prepare.batch.requests:
                    ctx = t.lookup(request.content_digest())
                    if ctx is not None:
                        t.record(
                            "bft.commit",
                            entry.t_prepared or self.now,
                            end=self.now,
                            parent=ctx,
                            pid=self.pid,
                            seq=seq,
                        )
            self._try_execute()

    def _try_execute(self) -> None:
        while True:
            entry = self.log.get(self.last_executed + 1)
            if entry is None or not entry.committed or entry.executed:
                break
            assert entry.pre_prepare is not None
            self.last_executed += 1
            entry.executed = True
            # Committed-order journal: (seq, batch content digest). External
            # checkers (repro.chaos) assert that every replica's journal
            # agrees on the digest at each sequence number it executed —
            # the committed-sequence prefix-agreement safety property.
            self.order_journal.append(
                (self.last_executed, entry.pre_prepare.request_digest)
            )
            # Real progress: relax the escalated view-change patience.
            self._consecutive_view_changes = 0
            # Every replica unpacks the batch in its recorded order, so
            # execution stays deterministic across the group; all requests
            # of one batch share its sequence number.
            for request in entry.pre_prepare.batch.requests:
                self._execute(request, self.last_executed)
            if self.last_executed % self.config.checkpoint_interval == 0:
                self._take_checkpoint(self.last_executed)
        self._refresh_vc_timer()
        # Completed instances free pipeline-window slots for queued batches.
        self._maybe_flush()

    def _execute(self, request: ClientRequest, seq: int) -> None:
        request_digest = request.content_digest()
        self._awaiting.discard(request_digest)
        if request.client_id == NULL_CLIENT:
            return
        last = self.client_table.get(request.client_id)
        if last is not None and request.timestamp <= last[0]:
            return  # duplicate ordered twice across a view change
        t = self.telemetry
        ctx = t.lookup(request_digest) if t.enabled else None
        if ctx is not None:
            span = t.begin("bft.execute", parent=ctx, pid=self.pid, seq=seq)
            # The application upcall runs under the execute span so spans it
            # emits (GM verdicts, servant dispatch) nest into this trace.
            with t.use(span.ctx if span is not None else ctx):
                result = self.execute_fn(
                    request.payload, seq, request.client_id, request.timestamp
                )
            t.end(span)
        else:
            result = self.execute_fn(
                request.payload, seq, request.client_id, request.timestamp
            )
        self.executions.append((seq, request.client_id, request.timestamp))
        reply = BftReply(
            view=self.view,
            timestamp=request.timestamp,
            client_id=request.client_id,
            sender=self.pid,
            result=result,
        )
        self.client_table[request.client_id] = (request.timestamp, reply)
        self._p2p(request.client_id, reply)

    # ------------------------------------------------------------ checkpoints

    def _take_checkpoint(self, seq: int) -> None:
        snapshot = self.snapshot_fn()
        self._own_snapshots[seq] = snapshot
        message = CheckpointMsg(seq=seq, state_digest=digest(snapshot), sender=self.pid)
        self._mcast(message)

    def _on_checkpoint(self, src: str, msg: CheckpointMsg) -> None:
        if msg.sender != src or msg.seq <= self.stable_seq:
            return
        self._checkpoints.setdefault(msg.seq, {})[src] = msg
        by_digest: dict[bytes, list[CheckpointMsg]] = {}
        for message in self._checkpoints[msg.seq].values():
            by_digest.setdefault(message.state_digest, []).append(message)
        for state_digest, messages in by_digest.items():
            if len(messages) >= self.config.quorum:
                self._stabilize(msg.seq, state_digest, tuple(messages))
                return

    def _stabilize(
        self, seq: int, state_digest: bytes, proof: tuple[CheckpointMsg, ...]
    ) -> None:
        if self.last_executed < seq:
            # We are behind the group: remember the proof and fetch state.
            self._request_state_transfer(seq, proof)
            return
        own = self._own_snapshots.get(seq)
        if own is None or digest(own) != state_digest:
            # Our state diverged from the quorum: recover from a peer.
            self._request_state_transfer(seq, proof)
            return
        self.stable_seq = seq
        self._stable_proof = proof
        self._stable_snapshot = own
        t = self.telemetry
        if t.enabled:
            t.health.record_checkpoint(self.pid, seq, self.last_executed - seq)
            t.registry.gauge(
                "bft_stable_seq", "Latest stable checkpoint, per replica",
                labels=("pid",),
            ).labels(pid=self.pid).set(seq)
        for old_seq in [s for s in self.log if s <= seq]:
            del self.log[old_seq]
        for old_seq in [s for s in self._checkpoints if s <= seq]:
            del self._checkpoints[old_seq]
        for old_seq in [s for s in self._own_snapshots if s < seq]:
            del self._own_snapshots[old_seq]
        if self.is_primary:
            self.next_seq = max(self.next_seq, self.stable_seq)
            self._drain_pending()
            # The advanced watermark may admit batches the window held back.
            self._maybe_flush()

    # ---------------------------------------------- checkpoint fetch (recovery)

    def stable_checkpoint(self) -> tuple[int, bytes, tuple[CheckpointMsg, ...]]:
        """The latest stable checkpoint: ``(seq, snapshot, 2f+1 proof)``.

        Public accessor for the recovery subsystem: a rejoining element
        fetches peers' stable checkpoints out of band and validates them
        with :meth:`verify_checkpoint_proof`.
        """
        return self.stable_seq, self._stable_snapshot, self._stable_proof

    def verify_checkpoint_proof(
        self, seq: int, state_digest: bytes, proof: tuple[CheckpointMsg, ...]
    ) -> bool:
        """Is ``proof`` a valid 2f+1 certificate for ``(seq, digest)``?"""
        senders = {c.sender for c in proof}
        digests = {c.state_digest for c in proof}
        seqs = {c.seq for c in proof}
        return (
            len(senders) >= self.config.quorum
            and digests == {state_digest}
            and seqs == {seq}
            and senders.issubset(set(self.config.replica_ids))
        )

    def adopt_stable_checkpoint(
        self, seq: int, snapshot: bytes, proof: tuple[CheckpointMsg, ...]
    ) -> bool:
        """Adopt a peer's stable-checkpoint *bookkeeping* without restoring.

        Used by recovery-level state transfer: the caller has already
        brought the application layer to (at least) ``seq`` by other means,
        so only the BFT-side checkpoint state moves — stable seq, proof,
        log pruning. Returns False if the proof fails or is not ahead.
        """
        if seq <= self.stable_seq:
            return False
        if not self.verify_checkpoint_proof(seq, digest(snapshot), proof):
            return False
        self.stable_seq = seq
        self._stable_proof = proof
        self._stable_snapshot = snapshot
        self._own_snapshots[seq] = snapshot
        if self.last_executed < seq:
            self.last_executed = seq
        for old_seq in [s for s in self.log if s <= seq]:
            del self.log[old_seq]
        for old_seq in [s for s in self._checkpoints if s <= seq]:
            del self._checkpoints[old_seq]
        for old_seq in [s for s in self._own_snapshots if s < seq]:
            del self._own_snapshots[old_seq]
        self._awaiting.clear()
        self._refresh_vc_timer()
        if self.is_primary:
            self.next_seq = max(self.next_seq, self.stable_seq)
        self._try_execute()
        return True

    # --------------------------------------------------------- state transfer

    def _request_state_transfer(
        self, seq: int, proof: tuple[CheckpointMsg, ...]
    ) -> None:
        if self._state_transfer_pending:
            return
        self._state_transfer_pending = True
        self._state_transfer_started = self.now
        self._state_transfer_proof = proof
        # Ask a replica that vouched for the checkpoint (not ourselves);
        # rotate through candidates across retry attempts.
        candidates = sorted(m.sender for m in proof if m.sender != self.pid)
        if not candidates:
            self._state_transfer_pending = False
            return
        target = candidates[self._state_transfer_attempt % len(candidates)]
        self._state_transfer_attempt += 1
        self._p2p(target, StateRequestMsg(low_seq=seq, sender=self.pid))

    def _on_state_request(self, src: str, msg: StateRequestMsg) -> None:
        if msg.sender != src:
            return
        if self.stable_seq == 0 or not self._stable_proof:
            return
        response = StateResponseMsg(
            stable_seq=self.stable_seq,
            state_digest=digest(self._stable_snapshot),
            snapshot=self._stable_snapshot,
            checkpoint_proof=self._stable_proof,
            sender=self.pid,
        )
        self._p2p(src, response)

    def _on_state_response(self, src: str, msg: StateResponseMsg) -> None:
        self._state_transfer_pending = False
        if msg.stable_seq <= self.stable_seq or msg.stable_seq <= self.last_executed:
            return
        if digest(msg.snapshot) != msg.state_digest:
            return
        # Proof: 2f+1 checkpoint messages from distinct replicas, same digest.
        if not self.verify_checkpoint_proof(
            msg.stable_seq, msg.state_digest, msg.checkpoint_proof
        ):
            return
        self.restore_fn(msg.snapshot, msg.stable_seq)
        self.last_executed = msg.stable_seq
        self.stable_seq = msg.stable_seq
        self._stable_proof = msg.checkpoint_proof
        self._stable_snapshot = msg.snapshot
        self._own_snapshots[msg.stable_seq] = msg.snapshot
        for old_seq in [s for s in self.log if s <= msg.stable_seq]:
            del self.log[old_seq]
        self._awaiting.clear()
        self._refresh_vc_timer()
        self._try_execute()

    # ------------------------------------------------------------ view change

    @property
    def _vc_timeout(self) -> float:
        return self.config.view_change_timeout * (
            2 ** min(self._consecutive_view_changes, 8)
        )

    def _ensure_vc_timer(self) -> None:
        if self._vc_timer is None and self._awaiting:
            self._vc_timer = self.set_timer(self._vc_timeout, self._on_vc_timeout)

    def _refresh_vc_timer(self) -> None:
        if not self._awaiting and self._vc_timer is not None:
            self.cancel_timer(self._vc_timer)
            self._vc_timer = None
        elif self._awaiting and self._vc_timer is None:
            self._ensure_vc_timer()

    @property
    def _view_change_target(self) -> int:
        """The view we are currently trying to move to."""
        if self.in_view_change and self._last_view_change is not None:
            return self._last_view_change.new_view
        return self.view

    def _on_vc_timeout(self) -> None:
        self._vc_timer = None
        # Escalate past the view we were TRYING to reach, not the view we
        # are in — otherwise a crashed would-be primary of view v+1 leaves
        # the group re-proposing v+1 forever.
        self._start_view_change(self._view_change_target + 1)

    def _start_view_change(self, new_view: int) -> None:
        if new_view <= self.view:
            return
        self.in_view_change = True
        self._consecutive_view_changes += 1
        # Unflushed batched requests go back to pending: the new primary
        # re-orders them (ours never reached a pre-prepare, so nothing is
        # lost by the log wipe below).
        self._fold_batch_into_pending()
        t = self.telemetry
        if t.enabled:
            t.health.record_view_change(self.pid, new_view, time=self.now)
            t.registry.counter(
                "bft_view_changes_total",
                "View changes started, by group",
                labels=("group",),
            ).labels(group=self.config.address).inc()
        prepared_certs = []
        for seq in sorted(self.log):
            entry = self.log[seq]
            if entry.prepared and entry.pre_prepare is not None and not entry.executed:
                matching = tuple(
                    p
                    for p in entry.prepares.values()
                    if p.view == entry.pre_prepare.view
                    and p.request_digest == entry.pre_prepare.request_digest
                )
                prepared_certs.append(
                    PreparedCertificate(
                        pre_prepare=entry.pre_prepare, prepares=matching
                    )
                )
        message = ViewChangeMsg(
            new_view=new_view,
            stable_seq=self.stable_seq,
            checkpoint_proof=self._stable_proof,
            prepared=tuple(prepared_certs),
            sender=self.pid,
        )
        self._last_view_change = message
        self._mcast(message)
        # Keep a timer so a failed view change escalates to the next view.
        self._vc_timer = self.set_timer(self._vc_timeout, self._on_vc_timeout)
        # Adopt the target view optimistically only in our VC bookkeeping;
        # self.view advances when the NEW-VIEW arrives (or when we are the
        # new primary and assemble it).

    def _on_view_change(self, src: str, msg: ViewChangeMsg) -> None:
        if msg.sender != src:
            return
        if msg.new_view <= self.view:
            # A straggler still asking for a view we already entered: if we
            # assembled that view's NEW-VIEW, re-send it (it may have been
            # lost on the way to the straggler).
            if (
                self._last_new_view is not None
                and self._last_new_view.new_view == msg.new_view == self.view
            ):
                self._p2p(src, self._last_new_view)
            return
        self._view_changes.setdefault(msg.new_view, {})[src] = msg
        # Liveness (the PBFT join rule): if f+1 distinct replicas have sent
        # view-changes for views greater than ours — for *any* such views —
        # adopt the smallest of them, even if our own timer has not fired
        # and even if we had targeted a different (higher) view. Without
        # cross-view counting, partitioned stragglers escalate to disjoint
        # view numbers and never re-align.
        senders = {
            sender
            for view, votes in self._view_changes.items()
            if view > self.view
            for sender in votes
        }
        if len(senders) >= self.config.f + 1:
            # Convergence is strictly upward: adopt the smallest proposed
            # view beyond our current target (stale lower proposals are
            # ignored, so groups cannot ping-pong between view numbers).
            candidates = [
                view for view in self._view_changes if view > self._view_change_target
            ]
            if candidates:
                self._start_view_change(min(candidates))
        self._maybe_assemble_new_view(msg.new_view)

    def _maybe_assemble_new_view(self, new_view: int) -> None:
        if self.config.primary_of_view(new_view) != self.pid:
            return
        if new_view <= self.view and not (new_view == self.view and self.in_view_change):
            return
        votes = self._view_changes.get(new_view, {})
        if self.pid not in votes and self.in_view_change:
            # Our own view-change (sent via multicast loopback) may still be
            # in flight; wait for it rather than special-casing.
            pass
        if len(votes) < self.config.quorum:
            return
        view_changes = tuple(votes[s] for s in sorted(votes))
        min_s = max(vc.stable_seq for vc in view_changes)
        # Re-issue pre-prepares for every prepared request above min_s,
        # choosing the certificate from the highest view per sequence.
        best: dict[int, PreparedCertificate] = {}
        for vc in view_changes:
            for cert in vc.prepared:
                seq = cert.pre_prepare.seq
                if seq <= min_s:
                    continue
                current = best.get(seq)
                if current is None or cert.pre_prepare.view > current.pre_prepare.view:
                    best[seq] = cert
        max_s = max(best) if best else min_s
        pre_prepares = []
        empty_batch = BatchMsg(requests=())
        for seq in range(min_s + 1, max_s + 1):
            # Sequence gaps are filled with an empty batch — a no-op that
            # keeps execution contiguous without inventing null requests.
            batch = best[seq].pre_prepare.batch if seq in best else empty_batch
            pre_prepares.append(
                PrePrepareMsg(
                    view=new_view,
                    seq=seq,
                    request_digest=batch.content_digest(),
                    batch=batch,
                    sender=self.pid,
                )
            )
        new_view_msg = NewViewMsg(
            new_view=new_view,
            view_changes=view_changes,
            pre_prepares=tuple(pre_prepares),
            sender=self.pid,
        )
        self._last_new_view = new_view_msg
        self._enter_view(new_view)
        self.next_seq = max_s
        self._mcast(new_view_msg)
        for pre_prepare in pre_prepares:
            # Process our own pre-prepares immediately (loopback also
            # delivers them to the other replicas).
            self._on_pre_prepare(self.pid, pre_prepare)
        self._drain_pending()

    def _on_new_view(self, src: str, msg: NewViewMsg) -> None:
        if msg.sender != src or msg.new_view < self.view:
            return
        if self.config.primary_of_view(msg.new_view) != src:
            return
        if len({vc.sender for vc in msg.view_changes}) < self.config.quorum:
            return
        if msg.new_view == self.view and not self.in_view_change:
            return
        if src == self.pid:
            return  # we assembled it ourselves
        self._enter_view(msg.new_view)
        for pre_prepare in msg.pre_prepares:
            self._on_pre_prepare(src, pre_prepare)

    def _enter_view(self, new_view: int) -> None:
        self.view = new_view
        self.in_view_change = False
        if self._vc_timer is not None:
            self.cancel_timer(self._vc_timer)
            self._vc_timer = None
        # A primary demoted without having started the view change itself
        # may still hold an accumulating batch; requeue it for reordering.
        self._fold_batch_into_pending()
        # Entries from the old view that never prepared are superseded; the
        # new primary's re-issued pre-prepares will replace them.
        for seq, entry in list(self.log.items()):
            if entry.pre_prepare is not None and entry.pre_prepare.view < new_view:
                if not entry.executed:
                    self.log[seq] = _LogEntry()
        for view in [v for v in self._view_changes if v <= new_view]:
            del self._view_changes[view]
        future, self._future = self._future, []
        for src, message in future:
            self.on_message(src, message)
        self._refresh_vc_timer()
        self._drain_pending()


def build_group(
    network: Any,
    config: BftConfig,
    execute_factory: Callable[[str], ExecuteFn] | None = None,
    replica_class: type[BftReplica] = BftReplica,
    auth_factory: Callable[[str], MessageAuth] | None = None,
    byzantine: dict[str, type[BftReplica]] | None = None,
) -> list[BftReplica]:
    """Wire a full replication group onto a network.

    Creates the multicast group, instantiates one replica per configured id
    (optionally substituting Byzantine classes per id), and joins them all.
    """
    group = network.create_group(config.address)
    replicas = []
    byzantine = byzantine or {}
    for pid in config.replica_ids:
        cls = byzantine.get(pid, replica_class)
        replica = cls(
            pid,
            config,
            execute_fn=execute_factory(pid) if execute_factory else None,
            auth=auth_factory(pid) if auth_factory else None,
        )
        network.add_process(replica)
        group.join(pid)
        replicas.append(replica)
    return replicas
