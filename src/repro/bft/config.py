"""Static configuration of one BFT replication group."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BftConfig:
    """Everything a replica must know about its group before it starts.

    ``replica_ids`` is the agreed membership *in order* — the primary of
    view ``v`` is ``replica_ids[v % n]``. ``f`` is the tolerated number of
    simultaneous Byzantine replicas; the constructor enforces the paper's
    ``n >= 3f + 1`` bound (§2, [4]).
    """

    group_id: str
    replica_ids: tuple[str, ...]
    f: int
    checkpoint_interval: int = 16
    view_change_timeout: float = 0.25
    client_retry_timeout: float = 0.5
    # "none" | "hmac" | "rsa" — how protocol messages are authenticated.
    auth_mode: str = "none"
    # Request batching (Castro–Liskov): the primary accumulates up to
    # ``batch_size`` requests into one ordered batch, waiting at most
    # ``batch_delay`` once the first request of a batch is pending. The
    # defaults reproduce unbatched PBFT exactly — every request flushes
    # immediately, with no timer scheduled.
    batch_size: int = 1
    batch_delay: float = 0.0
    # Maximum concurrent in-flight sequence numbers at the primary before
    # new batches queue (0 = bounded only by the watermark window).
    pipeline_window: int = 0
    # Multicast address used for replica-to-replica protocol traffic; when
    # None, the group id doubles as the address.
    multicast_address: str | None = None

    def __post_init__(self) -> None:
        if self.f < 0:
            raise ValueError("f must be non-negative")
        if len(set(self.replica_ids)) != len(self.replica_ids):
            raise ValueError("duplicate replica ids")
        if self.n < 3 * self.f + 1:
            raise ValueError(
                f"need n >= 3f+1 replicas: n={self.n}, f={self.f}"
            )
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        if self.auth_mode not in ("none", "hmac", "rsa"):
            raise ValueError(f"unknown auth_mode {self.auth_mode!r}")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.batch_delay < 0:
            raise ValueError("batch_delay must be non-negative")
        if self.pipeline_window < 0:
            raise ValueError("pipeline_window must be non-negative")

    @property
    def n(self) -> int:
        return len(self.replica_ids)

    @property
    def quorum(self) -> int:
        """Size of a prepared/committed/checkpoint quorum: ``2f + 1``."""
        return 2 * self.f + 1

    @property
    def reply_quorum(self) -> int:
        """Matching replies a client needs: ``f + 1``."""
        return self.f + 1

    @property
    def log_window(self) -> int:
        """Watermark window: sequence numbers accepted above the stable
        checkpoint. Two checkpoint intervals, as in the PBFT paper."""
        return 2 * self.checkpoint_interval

    @property
    def address(self) -> str:
        return self.multicast_address or self.group_id

    def primary_of_view(self, view: int) -> str:
        return self.replica_ids[view % self.n]

    def replica_index(self, pid: str) -> int:
        return self.replica_ids.index(pid)
