"""Message authentication strategies for BFT protocol traffic.

Castro–Liskov moved from signatures to pairwise-MAC *authenticator vectors*
for throughput [8]; ITDOS additionally needs real signatures on replies so
they can serve as transferable expulsion proof (§3.6). Three strategies:

* :class:`NullAuth` — trusted channels; fastest, used where an experiment is
  not about authentication. The simulated network never spoofs sender ids,
  so safety against *our* fault injectors is preserved.
* :class:`HmacAuth` — one MAC per receiver over the canonical content.
* :class:`RsaAuth` — one signature per message, verifiable by anyone.

Both cryptographic strategies share the message's memoized canonical
encoding (``auth`` is outside the canonical fields, so clean and stamped
instances encode identically) and keep a bounded cache of stamped forms:
stamping a message for n receivers marshals once, and a retransmission of
an identical message reuses the whole authenticator vector or signature.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from typing import Any

from repro.crypto.encoding import canonical_bytes
from repro.crypto.memo import MemoCache
from repro.crypto.signing import HmacAuthenticator, KeyRing, RsaSigner

#: Stamped protocol messages retained per strategy instance. Sized to cover
#: a replica's retransmission working set (a few dozen live messages), not
#: the whole log.
STAMP_CACHE_SIZE = 1024


def _content_bytes(message: Any) -> bytes:
    """The canonical bytes a MAC or signature covers.

    ``auth`` never participates in ``canonical_fields()``, so a stamped
    message's own content bytes are exactly what its sender authenticated —
    no stripped copy is needed on either side, and messages that memoize
    their encoding hash once across stamp, accept, and retransmit.
    """
    encode = getattr(message, "canonical_encoding", None)
    if callable(encode):
        return encode()
    return canonical_bytes(message)


class MessageAuth(ABC):
    """Strategy: stamp outgoing messages, accept or reject incoming ones."""

    #: Why the most recent ``accept`` returned False ("" after a success).
    #: Read by the caller's intrusion-evidence hook; a rejected MAC cannot
    #: distinguish a lying sender from a corrupted wire, so this only ever
    #: feeds *soft* suspicion.
    last_reject_reason: str = ""

    @abstractmethod
    def stamp(self, message: Any, receivers: list[str]) -> Any:
        """Return a copy of ``message`` carrying authentication material."""

    @abstractmethod
    def accept(self, src: str, message: Any) -> bool:
        """Is ``message`` authentically from ``src``?"""


class NullAuth(MessageAuth):
    """No cryptographic authentication; rely on the simulator's honest
    source addressing."""

    def stamp(self, message: Any, receivers: list[str]) -> Any:
        return message

    def accept(self, src: str, message: Any) -> bool:
        return True


class HmacAuth(MessageAuth):
    """Authenticator vectors over pairwise keys (Castro–Liskov style)."""

    def __init__(
        self, authenticator: HmacAuthenticator, stamp_cache_size: int = STAMP_CACHE_SIZE
    ) -> None:
        self.authenticator = authenticator
        # (message, receivers) -> stamped copy. Keyed on content equality,
        # so the fresh-but-identical prepares/commits a retransmission tick
        # rebuilds hit without re-MACing.
        self._stamped = MemoCache(maxsize=stamp_cache_size)

    @property
    def stamp_cache(self) -> MemoCache:
        return self._stamped

    def stamp(self, message: Any, receivers: list[str]) -> Any:
        others = tuple(r for r in receivers if r != self.authenticator.own_id)
        key = (message, others)
        cached = self._stamped.get(key)
        if cached is not None:
            return cached
        data = _content_bytes(message)  # marshalled once, shared by every MAC
        vector = {
            peer: self.authenticator.mac_for(peer, data)
            for peer in others
            if self.authenticator.knows(peer)
        }
        stamped = dataclasses.replace(message, auth=vector)
        self._stamped.put(key, stamped)
        return stamped

    def accept(self, src: str, message: Any) -> bool:
        auth = getattr(message, "auth", None)
        if not isinstance(auth, dict):
            self.last_reject_reason = "missing-authenticator"
            return False
        mac = auth.get(self.authenticator.own_id)
        if mac is None:
            self.last_reject_reason = "missing-mac"
            return False
        if not self.authenticator.check(src, _content_bytes(message), mac):
            self.last_reject_reason = "bad-mac"
            return False
        self.last_reject_reason = ""
        return True


class RsaAuth(MessageAuth):
    """One transferable signature per message."""

    def __init__(
        self,
        signer: RsaSigner,
        keyring: KeyRing,
        stamp_cache_size: int = STAMP_CACHE_SIZE,
    ) -> None:
        self.signer = signer
        self.keyring = keyring
        self._stamped = MemoCache(maxsize=stamp_cache_size)

    @property
    def stamp_cache(self) -> MemoCache:
        return self._stamped

    def stamp(self, message: Any, receivers: list[str]) -> Any:
        cached = self._stamped.get(message)
        if cached is not None:
            return cached
        signature = self.signer.sign(_content_bytes(message))
        stamped = dataclasses.replace(message, auth=signature)
        self._stamped.put(message, stamped)
        return stamped

    def accept(self, src: str, message: Any) -> bool:
        auth = getattr(message, "auth", None)
        if not isinstance(auth, (bytes, bytearray)):
            self.last_reject_reason = "missing-signature"
            return False
        if not self.keyring.verify(src, _content_bytes(message), bytes(auth)):
            self.last_reject_reason = "bad-signature"
            return False
        self.last_reject_reason = ""
        return True
