"""Message authentication strategies for BFT protocol traffic.

Castro–Liskov moved from signatures to pairwise-MAC *authenticator vectors*
for throughput [8]; ITDOS additionally needs real signatures on replies so
they can serve as transferable expulsion proof (§3.6). Three strategies:

* :class:`NullAuth` — trusted channels; fastest, used where an experiment is
  not about authentication. The simulated network never spoofs sender ids,
  so safety against *our* fault injectors is preserved.
* :class:`HmacAuth` — one MAC per receiver over the canonical content.
* :class:`RsaAuth` — one signature per message, verifiable by anyone.
"""

from __future__ import annotations

import dataclasses
from abc import ABC, abstractmethod
from typing import Any

from repro.crypto.signing import HmacAuthenticator, KeyRing, RsaSigner


class MessageAuth(ABC):
    """Strategy: stamp outgoing messages, accept or reject incoming ones."""

    @abstractmethod
    def stamp(self, message: Any, receivers: list[str]) -> Any:
        """Return a copy of ``message`` carrying authentication material."""

    @abstractmethod
    def accept(self, src: str, message: Any) -> bool:
        """Is ``message`` authentically from ``src``?"""


class NullAuth(MessageAuth):
    """No cryptographic authentication; rely on the simulator's honest
    source addressing."""

    def stamp(self, message: Any, receivers: list[str]) -> Any:
        return message

    def accept(self, src: str, message: Any) -> bool:
        return True


class HmacAuth(MessageAuth):
    """Authenticator vectors over pairwise keys (Castro–Liskov style)."""

    def __init__(self, authenticator: HmacAuthenticator) -> None:
        self.authenticator = authenticator

    def stamp(self, message: Any, receivers: list[str]) -> Any:
        others = [r for r in receivers if r != self.authenticator.own_id]
        vector = self.authenticator.authenticator(others, message)
        return dataclasses.replace(message, auth=vector)

    def accept(self, src: str, message: Any) -> bool:
        auth = getattr(message, "auth", None)
        if not isinstance(auth, dict):
            return False
        mac = auth.get(self.authenticator.own_id)
        if mac is None:
            return False
        clean = dataclasses.replace(message, auth=None)
        return self.authenticator.check(src, clean, mac)


class RsaAuth(MessageAuth):
    """One transferable signature per message."""

    def __init__(self, signer: RsaSigner, keyring: KeyRing) -> None:
        self.signer = signer
        self.keyring = keyring

    def stamp(self, message: Any, receivers: list[str]) -> Any:
        signature = self.signer.sign(message)
        return dataclasses.replace(message, auth=signature)

    def accept(self, src: str, message: Any) -> bool:
        auth = getattr(message, "auth", None)
        if not isinstance(auth, (bytes, bytearray)):
            return False
        clean = dataclasses.replace(message, auth=None)
        return self.keyring.verify(src, clean, bytes(auth))
