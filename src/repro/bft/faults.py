"""Byzantine replica behaviours for fault-injection experiments.

Correct-process code never checks "am I faulty?" flags; faults are expressed
as subclasses overriding behaviour — the same structure the adversary has in
the Byzantine model (full control over up to f replicas, §2).
"""

from __future__ import annotations

from typing import Any

from repro.bft.messages import BftReply
from repro.bft.replica import BftReplica


class SilentReplica(BftReplica):
    """Participates in nothing: the crash end of the Byzantine spectrum."""

    def on_message(self, src: str, payload: Any) -> None:
        return


class CorruptReplyReplica(BftReplica):
    """Orders correctly but sends garbage results to clients.

    Detected only by clients comparing reply values — the paper's primary
    fault-detection path ("faulty processes ... detected primarily by
    processes external to it; ... clients receiving a faulty result", §2).
    """

    def _p2p(self, dst: str, message: Any) -> None:
        if isinstance(message, BftReply):
            message = BftReply(
                view=message.view,
                timestamp=message.timestamp,
                client_id=message.client_id,
                sender=message.sender,
                result=b"\xde\xad" + message.result,
            )
        super()._p2p(dst, message)


class StutteringPrimaryReplica(BftReplica):
    """As primary, never orders requests (but otherwise participates).

    Forces the backups' view-change timers to fire — the liveness path.
    """

    def _order(self, request: Any) -> None:
        return


class EquivocatingPrimaryReplica(BftReplica):
    """As primary, assigns the same sequence number twice.

    Correct backups accept at most one pre-prepare per (view, seq), so
    equivocation cannot produce two committed requests at one seq; it can
    only stall progress and trigger a view change.
    """

    def _order(self, request: Any) -> None:
        if self.next_seq >= 1:
            self.next_seq -= 1  # reuse the previous sequence number
        super()._order(request)


class SlowReplica(BftReplica):
    """Delays all sends by a fixed lag: Byzantine-slow, not crashed.

    Exercises the voter's refusal to wait for all 3f+1 messages (§3.6:
    waiting for stragglers "would cause the system to be vulnerable to ...
    faulty processes that may be deliberately slow").
    """

    lag: float = 0.5

    def _mcast(self, message: Any) -> None:
        self.set_timer(self.lag, lambda: BftReplica._mcast(self, message))

    def _p2p(self, dst: str, message: Any) -> None:
        self.set_timer(self.lag, lambda: BftReplica._p2p(self, dst, message))
