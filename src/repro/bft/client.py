"""The PBFT client side.

A client sends its request to the primary, starts a retransmission timer,
and accepts a result once it has ``f+1`` matching replies from distinct
replicas — at least one of which must be correct (§3.1: "The client waits
for f+1 replies with the same result; this is the result of the operation").
On timeout it retransmits to *all* replicas, which triggers the
forward-to-primary / view-change path if the primary is faulty.

Two classes:

* :class:`BftClientEngine` — the protocol logic, embeddable in any simulated
  process. ITDOS processes embed several engines at once (one per
  replication group they talk to: target domains, the Group Manager, their
  own domain for reply routing).
* :class:`BftClient` — a standalone client process wrapping one engine;
  convenient for tests and BFT-only benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.bft.config import BftConfig
from repro.bft.messages import BftReply, ClientRequest
from repro.sim.process import Process
from repro.sim.scheduler import TimerHandle

ReplyCallback = Callable[[bytes], None]


@dataclass
class _PendingOp:
    request: ClientRequest
    callback: ReplyCallback
    replies: dict[str, bytes] = field(default_factory=dict)  # sender -> result
    done: bool = False
    timer: TimerHandle | None = None
    retransmissions: int = 0


class BftClientEngine:
    """Client-role protocol engine against one replication group.

    ``owner`` supplies identity, sends, and timers; the engine keeps the
    pending-operation table. Deliveries must be routed to
    :meth:`handle_message`, which returns True when it consumed the payload.
    """

    def __init__(
        self,
        owner: Process,
        config: BftConfig,
        max_outstanding: int | None = None,
        timestamp_base: int = 0,
    ) -> None:
        self.owner = owner
        self.config = config
        # Client-side pipelining cap: with ``max_outstanding`` set, extra
        # invokes queue locally and dispatch as earlier ones complete.
        # PBFT's client-table dedup keys on the *latest* timestamp per
        # client, so a single client must keep its requests ordered — cap 1
        # reproduces the paper's one-outstanding-request discipline while
        # letting callers submit back-to-back load; batching then amortizes
        # across many such clients.
        self.max_outstanding = max_outstanding
        # PBFT timestamps must be monotonic across client *incarnations*:
        # a rebooted client starting again at 0 would match the replicas'
        # client-table entries and be served stale cached replies. The sim
        # keeps base 0 (one incarnation per pid, determinism preserved);
        # real-wire processes seed this from their local clock, exactly the
        # paper's "value of the client's local clock" suggestion.
        self._timestamp = timestamp_base
        self._view_estimate = 0
        self._pending: dict[int, _PendingOp] = {}  # timestamp -> op
        self._queue: list[tuple[bytes, ReplyCallback]] = []
        self.completed: list[tuple[int, bytes]] = []  # (timestamp, result)

    @property
    def client_id(self) -> str:
        return self.owner.pid

    @property
    def _believed_primary(self) -> str:
        return self.config.primary_of_view(self._view_estimate)

    def invoke(self, payload: bytes, callback: ReplyCallback | None = None) -> int:
        """Submit an operation; returns its timestamp (the client-local id).

        ``callback`` fires once with the accepted (f+1-matching) result.
        Returns ``-1`` when the outstanding cap defers the submission; the
        operation gets its timestamp when it actually dispatches.
        """
        if (
            self.max_outstanding is not None
            and len(self._pending) >= self.max_outstanding
        ):
            self._queue.append((payload, callback or (lambda result: None)))
            return -1
        return self._submit(payload, callback)

    def _submit(self, payload: bytes, callback: ReplyCallback | None) -> int:
        self._timestamp += 1
        timestamp = self._timestamp
        request = ClientRequest(
            client_id=self.client_id, timestamp=timestamp, payload=payload
        )
        op = _PendingOp(request=request, callback=callback or (lambda result: None))
        self._pending[timestamp] = op
        t = self.owner.telemetry
        if t.enabled:
            # The ambient span (an SMIOP request or connect, if any) becomes
            # the parent of the BFT phase spans replicas emit for this
            # request; the content digest is the correlation key that
            # reappears verbatim in their pre-prepares.
            if t.current is not None:
                t.bind(request.content_digest(), t.current)
            t.registry.counter(
                "bft_client_requests_total", "Client operations submitted, by group",
                labels=("group",),
            ).labels(group=self.config.address).inc()
        self.owner.send(self._believed_primary, request)
        op.timer = self.owner.set_timer(
            self.config.client_retry_timeout, lambda: self._retry(timestamp)
        )
        return timestamp

    def _retry(self, timestamp: int) -> None:
        op = self._pending.get(timestamp)
        if op is None or op.done:
            return
        op.retransmissions += 1
        t = self.owner.telemetry
        if t.enabled:
            t.registry.counter(
                "bft_client_retransmissions_total",
                "Client retry broadcasts, by group",
                labels=("group",),
            ).labels(group=self.config.address).inc()
        for replica_id in self.config.replica_ids:
            self.owner.send(replica_id, op.request)
        op.timer = self.owner.set_timer(
            self.config.client_retry_timeout * (2 ** min(op.retransmissions, 6)),
            lambda: self._retry(timestamp),
        )

    def handle_message(self, src: str, payload: Any) -> bool:
        """Process a delivery if it belongs to this engine."""
        if not isinstance(payload, BftReply):
            return False
        if payload.client_id != self.client_id or src != payload.sender:
            return False
        if src not in self.config.replica_ids:
            return False
        op = self._pending.get(payload.timestamp)
        if op is None or op.done:
            return True  # ours, but already settled
        self._view_estimate = max(self._view_estimate, payload.view)
        op.replies[src] = payload.result
        matching = sum(1 for r in op.replies.values() if r == payload.result)
        if matching >= self.config.reply_quorum:
            op.done = True
            if op.timer is not None:
                self.owner.cancel_timer(op.timer)
                op.timer = None
            self.completed.append((payload.timestamp, payload.result))
            del self._pending[payload.timestamp]
            op.callback(payload.result)
            self._dispatch_queued()
        return True

    def _dispatch_queued(self) -> None:
        while self._queue and (
            self.max_outstanding is None
            or len(self._pending) < self.max_outstanding
        ):
            payload, callback = self._queue.pop(0)
            self._submit(payload, callback)

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    @property
    def queued(self) -> int:
        return len(self._queue)


class BftClient(Process):
    """Standalone client process for one replication group."""

    def __init__(
        self, pid: str, config: BftConfig, max_outstanding: int | None = None
    ) -> None:
        super().__init__(pid)
        self.engine = BftClientEngine(self, config, max_outstanding=max_outstanding)
        self.config = config

    def invoke(self, payload: bytes, callback: ReplyCallback | None = None) -> int:
        return self.engine.invoke(payload, callback)

    def on_message(self, src: str, payload: Any) -> None:
        self.engine.handle_message(src, payload)

    @property
    def completed(self) -> list[tuple[int, bytes]]:
        return self.engine.completed

    @property
    def outstanding(self) -> int:
        return self.engine.outstanding
