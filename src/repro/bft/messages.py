"""PBFT protocol messages.

Every message is a frozen dataclass with:

* ``canonical_fields()`` — deterministic content for digests/signing,
* ``wire_size()`` — estimated encoded size, so the simulated network can
  model size-dependent delay and the benchmarks can count bytes,
* ``trace_label()`` — compact label for figure traces.

``auth`` carries authentication material (MAC vector or signature) and is
excluded from the canonical content, since the MAC covers the content.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.crypto.digests import digest
from repro.crypto.encoding import canonical_bytes
from repro.crypto.memo import MemoCache

_HEADER_OVERHEAD = 48  # nominal per-message framing cost in bytes

# Content-addressed caches shared by every message instance. Keys are the
# messages themselves: frozen dataclasses whose ``auth`` field is excluded
# from comparison and hashing, so a clean message and its stamped copy map
# to the same entry — the bytes computed when the sender stamps are the
# bytes every receiver verifies, hashed exactly once.
_ENCODING_CACHE = MemoCache(maxsize=8192)
_DIGEST_CACHE = MemoCache(maxsize=8192)


def marshal_cache_stats() -> dict[str, dict[str, float]]:
    """Observability hook: hit/miss/eviction counters for both caches."""
    return {
        "encoding": _ENCODING_CACHE.stats(),
        "digest": _DIGEST_CACHE.stats(),
    }


def _auth_size(auth: dict[str, bytes] | bytes | None) -> int:
    if auth is None:
        return 0
    if isinstance(auth, (bytes, bytearray)):
        return len(auth)
    return sum(len(mac) for mac in auth.values())


@dataclass(frozen=True)
class BftMessage:
    """Common behaviour for all protocol messages."""

    def canonical_fields(self) -> dict:  # pragma: no cover - overridden
        raise NotImplementedError

    def canonical_encoding(self) -> bytes:
        """Canonical TLV bytes of the message content, memoized.

        Level 1 is a per-instance slot; level 2 is the content-addressed
        LRU, which a stamped copy (equal under dataclass comparison — the
        ``auth`` field never compares) shares with the clean original.
        """
        cached = self.__dict__.get("_enc")
        if cached is None:
            cached = _ENCODING_CACHE.memo(self, lambda: canonical_bytes(self))
            object.__setattr__(self, "_enc", cached)
        return cached

    def content_digest(self) -> bytes:
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = _DIGEST_CACHE.memo(
                self, lambda: digest(self.canonical_encoding())
            )
            object.__setattr__(self, "_digest", cached)
        return cached

    def wire_size(self) -> int:
        return _HEADER_OVERHEAD + _payload_size(self.canonical_fields())

    def trace_label(self) -> str:
        return type(self).__name__


def _payload_size(value: Any) -> int:
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, (list, tuple)):
        return sum(_payload_size(v) for v in value) + 4
    if isinstance(value, dict):
        return sum(len(k) + _payload_size(v) for k, v in value.items()) + 4
    fields_fn = getattr(value, "canonical_fields", None)
    if callable(fields_fn):
        return _payload_size(fields_fn())
    return 8


@dataclass(frozen=True)
class ClientRequest(BftMessage):
    """<REQUEST, o, t, c>: operation payload, client timestamp, client id."""

    client_id: str
    timestamp: int
    payload: bytes
    auth: bytes | None = field(default=None, compare=False)

    def canonical_fields(self) -> dict:
        return {
            "client_id": self.client_id,
            "timestamp": self.timestamp,
            "payload": self.payload,
        }

    def wire_size(self) -> int:
        return super().wire_size() + _auth_size(self.auth)

    def trace_label(self) -> str:
        return f"Request(c={self.client_id},t={self.timestamp})"


@dataclass(frozen=True)
class BatchMsg(BftMessage):
    """An ordered batch of client requests sharing one sequence number.

    Castro–Liskov batching: under load the primary runs the three-phase
    protocol once per *batch*, amortizing protocol messages and
    authentication across requests from many clients / virtual
    connections. The batch digest is what prepare, commit, and
    view-change certificates cover; execution unpacks the requests in
    batch order, so per-client reply semantics are untouched. An empty
    batch is the no-op filler for view-change sequence gaps.
    """

    requests: tuple[ClientRequest, ...]

    def canonical_fields(self) -> dict:
        return {"requests": [r.canonical_fields() for r in self.requests]}

    def wire_size(self) -> int:
        return _HEADER_OVERHEAD + sum(r.wire_size() for r in self.requests)

    def trace_label(self) -> str:
        return f"Batch(k={len(self.requests)})"


@dataclass(frozen=True)
class PrePrepareMsg(BftMessage):
    """<PRE-PREPARE, v, n, d> piggybacking the request batch itself."""

    view: int
    seq: int
    request_digest: bytes  # the batch's content digest
    batch: BatchMsg
    sender: str
    auth: dict[str, bytes] | bytes | None = field(default=None, compare=False)

    def canonical_fields(self) -> dict:
        return {
            "view": self.view,
            "seq": self.seq,
            "request_digest": self.request_digest,
            "sender": self.sender,
        }

    def wire_size(self) -> int:
        return super().wire_size() + self.batch.wire_size() + _auth_size(self.auth)

    def trace_label(self) -> str:
        return f"PrePrepare(v={self.view},n={self.seq})"


@dataclass(frozen=True)
class PrepareMsg(BftMessage):
    """<PREPARE, v, n, d, i>."""

    view: int
    seq: int
    request_digest: bytes
    sender: str
    auth: dict[str, bytes] | bytes | None = field(default=None, compare=False)

    def canonical_fields(self) -> dict:
        return {
            "view": self.view,
            "seq": self.seq,
            "request_digest": self.request_digest,
            "sender": self.sender,
        }

    def wire_size(self) -> int:
        return super().wire_size() + _auth_size(self.auth)

    def trace_label(self) -> str:
        return f"Prepare(v={self.view},n={self.seq},i={self.sender})"


@dataclass(frozen=True)
class CommitMsg(BftMessage):
    """<COMMIT, v, n, d, i>."""

    view: int
    seq: int
    request_digest: bytes
    sender: str
    auth: dict[str, bytes] | bytes | None = field(default=None, compare=False)

    def canonical_fields(self) -> dict:
        return {
            "view": self.view,
            "seq": self.seq,
            "request_digest": self.request_digest,
            "sender": self.sender,
        }

    def wire_size(self) -> int:
        return super().wire_size() + _auth_size(self.auth)

    def trace_label(self) -> str:
        return f"Commit(v={self.view},n={self.seq},i={self.sender})"


@dataclass(frozen=True)
class BftReply(BftMessage):
    """<REPLY, v, t, c, i, r> from replica ``sender`` to the client."""

    view: int
    timestamp: int
    client_id: str
    sender: str
    result: bytes
    auth: bytes | None = field(default=None, compare=False)

    def canonical_fields(self) -> dict:
        return {
            "view": self.view,
            "timestamp": self.timestamp,
            "client_id": self.client_id,
            "sender": self.sender,
            "result": self.result,
        }

    def wire_size(self) -> int:
        return super().wire_size() + _auth_size(self.auth)

    def trace_label(self) -> str:
        return f"Reply(t={self.timestamp},i={self.sender})"


@dataclass(frozen=True)
class CheckpointMsg(BftMessage):
    """<CHECKPOINT, n, d, i>: digest of the application state at seq n."""

    seq: int
    state_digest: bytes
    sender: str
    auth: dict[str, bytes] | bytes | None = field(default=None, compare=False)

    def canonical_fields(self) -> dict:
        return {
            "seq": self.seq,
            "state_digest": self.state_digest,
            "sender": self.sender,
        }

    def trace_label(self) -> str:
        return f"Checkpoint(n={self.seq},i={self.sender})"


@dataclass(frozen=True)
class PreparedCertificate(BftMessage):
    """Proof that a request prepared at (view, seq): pre-prepare + 2f prepares."""

    pre_prepare: PrePrepareMsg
    prepares: tuple[PrepareMsg, ...]

    def canonical_fields(self) -> dict:
        return {
            "pre_prepare": self.pre_prepare.canonical_fields(),
            "prepares": [p.canonical_fields() for p in self.prepares],
        }


@dataclass(frozen=True)
class ViewChangeMsg(BftMessage):
    """<VIEW-CHANGE, v+1, n, C, P, i>.

    ``stable_seq`` and ``checkpoint_proof`` establish the sender's stable
    checkpoint; ``prepared`` carries a certificate for every request the
    sender prepared above it.
    """

    new_view: int
    stable_seq: int
    checkpoint_proof: tuple[CheckpointMsg, ...]
    prepared: tuple[PreparedCertificate, ...]
    sender: str
    auth: dict[str, bytes] | bytes | None = field(default=None, compare=False)

    def canonical_fields(self) -> dict:
        return {
            "new_view": self.new_view,
            "stable_seq": self.stable_seq,
            "checkpoint_proof": [c.canonical_fields() for c in self.checkpoint_proof],
            "prepared": [p.canonical_fields() for p in self.prepared],
            "sender": self.sender,
        }

    def trace_label(self) -> str:
        return f"ViewChange(v={self.new_view},i={self.sender})"


@dataclass(frozen=True)
class NewViewMsg(BftMessage):
    """<NEW-VIEW, v+1, V, O>: view-change quorum + re-issued pre-prepares."""

    new_view: int
    view_changes: tuple[ViewChangeMsg, ...]
    pre_prepares: tuple[PrePrepareMsg, ...]
    sender: str
    auth: dict[str, bytes] | bytes | None = field(default=None, compare=False)

    def canonical_fields(self) -> dict:
        return {
            "new_view": self.new_view,
            "view_changes": [v.canonical_fields() for v in self.view_changes],
            "pre_prepares": [p.canonical_fields() for p in self.pre_prepares],
            "sender": self.sender,
        }

    def trace_label(self) -> str:
        return f"NewView(v={self.new_view})"


@dataclass(frozen=True)
class StatusMsg(BftMessage):
    """Periodic liveness beacon: how far this replica has progressed.

    Peers that are ahead respond with a :class:`FillMsg` carrying the
    committed entries the sender is missing — the log-retransmission half
    of Castro–Liskov's status mechanism, which keeps lagging replicas
    inside the watermark window even before a checkpoint stabilises.
    """

    view: int
    last_executed: int
    stable_seq: int
    sender: str

    def canonical_fields(self) -> dict:
        return {
            "view": self.view,
            "last_executed": self.last_executed,
            "stable_seq": self.stable_seq,
            "sender": self.sender,
        }

    def trace_label(self) -> str:
        return f"Status(exec={self.last_executed},i={self.sender})"


@dataclass(frozen=True)
class FillMsg(BftMessage):
    """Committed log entries for a lagging peer.

    Each entry is a pre-prepare plus a *commit certificate* (2f+1 commits
    from distinct replicas for the same digest) — sufficient proof that the
    request committed at that sequence number, independently of views.
    """

    entries: tuple[tuple[PrePrepareMsg, tuple[CommitMsg, ...]], ...]
    sender: str

    def canonical_fields(self) -> dict:
        return {
            "entries": [
                [pp.canonical_fields(), [c.canonical_fields() for c in commits]]
                for pp, commits in self.entries
            ],
            "sender": self.sender,
        }

    def wire_size(self) -> int:
        return 48 + sum(
            pp.wire_size() + sum(c.wire_size() for c in commits)
            for pp, commits in self.entries
        )

    def trace_label(self) -> str:
        seqs = [pp.seq for pp, _ in self.entries]
        return f"Fill(seqs={seqs})"


@dataclass(frozen=True)
class StateRequestMsg(BftMessage):
    """Ask a peer for the application state at its stable checkpoint."""

    low_seq: int
    sender: str

    def canonical_fields(self) -> dict:
        return {"low_seq": self.low_seq, "sender": self.sender}

    def trace_label(self) -> str:
        return f"StateRequest(from={self.low_seq})"


@dataclass(frozen=True)
class StateResponseMsg(BftMessage):
    """State snapshot + proof it matches a stable checkpoint."""

    stable_seq: int
    state_digest: bytes
    snapshot: bytes
    checkpoint_proof: tuple[CheckpointMsg, ...]
    sender: str

    def canonical_fields(self) -> dict:
        return {
            "stable_seq": self.stable_seq,
            "state_digest": self.state_digest,
            "snapshot": self.snapshot,
            "checkpoint_proof": [c.canonical_fields() for c in self.checkpoint_proof],
            "sender": self.sender,
        }

    def trace_label(self) -> str:
        return f"StateResponse(n={self.stable_seq})"
