"""Request generators for the benchmark harness."""

from __future__ import annotations

import random
import string
from typing import Any, Callable


def float_vectors(
    rng: random.Random, count: int, length: int = 8, scale: float = 1e3
) -> list[list[float]]:
    """``count`` vectors of floats — the inexact-voting workload."""
    return [
        [rng.uniform(-scale, scale) for _ in range(length)] for _ in range(count)
    ]


def random_strings(rng: random.Random, count: int, length: int = 16) -> list[str]:
    alphabet = string.ascii_letters + string.digits
    return [
        "".join(rng.choice(alphabet) for _ in range(length)) for _ in range(count)
    ]


def sensor_readings(
    rng: random.Random, count: int, sensors: int = 4, drift: float = 0.05
) -> list[list[dict[str, float]]]:
    """Rounds of multi-sensor readings around a common ground truth.

    Each round: ``sensors`` readings of the same physical quantity, each
    with small sensor-specific drift — the data-fusion workload from the
    voting paper's motivation [3].
    """
    rounds = []
    for _ in range(count):
        truth = rng.uniform(10.0, 30.0)
        rounds.append(
            [
                {
                    "value": truth + rng.gauss(0.0, drift),
                    "weight": rng.uniform(0.5, 1.5),
                }
                for _ in range(sensors)
            ]
        )
    return rounds


def read_write_mix(
    rng: random.Random, count: int, read_fraction: float
) -> list[str]:
    """A shuffled ``count``-long schedule of ``"read"``/``"write"`` slots.

    The read count is exact (``round(count * read_fraction)``), so a
    90/10 schedule of 100 requests holds exactly 90 reads — benchmark
    cells compare like with like across seeds. The shuffle order is the
    only randomness.
    """
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError("read_fraction must be in [0, 1]")
    reads = round(count * read_fraction)
    schedule = ["read"] * reads + ["write"] * (count - reads)
    rng.shuffle(schedule)
    return schedule


def mix_90_10(rng: random.Random, count: int) -> list[str]:
    """The read-heavy OLTP-ish preset: 90% reads."""
    return read_write_mix(rng, count, 0.9)


def mix_99_1(rng: random.Random, count: int) -> list[str]:
    """The read-dominated preset: 99% reads (E19's headline cell)."""
    return read_write_mix(rng, count, 0.99)


class ClosedLoopDriver:
    """Issues operations one at a time and records simulated latencies.

    The single-threaded ITDOS client permits exactly one outstanding
    request per connection, so a closed loop is the natural load shape.
    """

    def __init__(self, network: Any) -> None:
        self.network = network
        self.latencies: list[float] = []

    def run(self, operations: list[Callable[[], Any]]) -> list[Any]:
        """Execute ``operations`` sequentially; returns their results."""
        results = []
        for operation in operations:
            start = self.network.now
            results.append(operation())
            self.latencies.append(self.network.now - start)
        return results
