"""Canonical interfaces, servants, and deployments for benchmarks/examples.

These are the workloads the paper's introduction motivates: mission-critical
services (a bank with an audit ledger), data fusion over heterogeneous
sensors (the inexact-voting case), plus a key-value store whose value size
is the knob for the state-synchronisation experiment (E4).
"""

from __future__ import annotations

from typing import Any

from repro.giop.idl import InterfaceDef, InterfaceRepository, Operation, Parameter
from repro.giop.typecodes import (
    TC_DOUBLE,
    TC_LONG,
    TC_STRING,
    TC_VOID,
    SequenceType,
    StructType,
)
from repro.itdos.bootstrap import ItdosSystem
from repro.itdos.sharding import TXN_COORDINATOR, ShardMap, ShardRouter
from repro.orb.errors import UserException
from repro.orb.servant import Servant

# -- interfaces -------------------------------------------------------------------

CALCULATOR = InterfaceDef(
    "Calculator",
    (
        Operation("add", (Parameter("a", TC_DOUBLE), Parameter("b", TC_DOUBLE)), TC_DOUBLE),
        Operation("divide", (Parameter("a", TC_DOUBLE), Parameter("b", TC_DOUBLE)), TC_DOUBLE),
        Operation(
            "mean", (Parameter("xs", SequenceType(TC_DOUBLE)),), TC_DOUBLE,
            read_only=True,
        ),
        Operation("store", (Parameter("v", TC_DOUBLE),), TC_VOID),
        Operation("history", (), SequenceType(TC_DOUBLE), read_only=True),
    ),
)

LEDGER = InterfaceDef(
    "Ledger",
    (
        Operation("record", (Parameter("entry", TC_STRING),), TC_LONG),
        Operation("count", (), TC_LONG, read_only=True),
    ),
)

BANK = InterfaceDef(
    "Bank",
    (
        Operation(
            "deposit",
            (Parameter("account", TC_STRING), Parameter("amount", TC_DOUBLE)),
            TC_DOUBLE,
        ),
        Operation(
            "withdraw",
            (Parameter("account", TC_STRING), Parameter("amount", TC_DOUBLE)),
            TC_DOUBLE,
        ),
        Operation(
            "balance", (Parameter("account", TC_STRING),), TC_DOUBLE, read_only=True
        ),
        Operation(
            "audited_deposit",
            (Parameter("account", TC_STRING), Parameter("amount", TC_DOUBLE)),
            TC_DOUBLE,
        ),
    ),
)

READING = StructType(
    "Reading", (("value", TC_DOUBLE), ("weight", TC_DOUBLE))
)

SENSOR_FUSION = InterfaceDef(
    "SensorFusion",
    (
        Operation("fuse", (Parameter("readings", SequenceType(READING)),), TC_DOUBLE),
        Operation("estimate", (), TC_DOUBLE, read_only=True),
        Operation("rounds", (), TC_LONG, read_only=True),
    ),
)

KVSTORE = InterfaceDef(
    "KvStore",
    (
        Operation("put", (Parameter("key", TC_STRING), Parameter("value", TC_STRING)), TC_VOID),
        Operation("get", (Parameter("key", TC_STRING),), TC_STRING, read_only=True),
        Operation("size", (), TC_LONG, read_only=True),
    ),
)


SHARD_KV = InterfaceDef(
    "ShardKv",
    (
        Operation("put", (Parameter("key", TC_STRING), Parameter("value", TC_STRING)), TC_VOID),
        Operation("get", (Parameter("key", TC_STRING),), TC_STRING, read_only=True),
        Operation("size", (), TC_LONG, read_only=True),
        # BFT cross-shard commit (E20): the 2PC records the coordinator
        # domain writes into this shard's ordering.
        Operation(
            "prepare",
            (
                Parameter("txn", TC_STRING),
                Parameter("keys", SequenceType(TC_STRING)),
                Parameter("values", SequenceType(TC_STRING)),
            ),
            TC_LONG,
        ),
        Operation("commit", (Parameter("txn", TC_STRING),), TC_LONG),
        Operation("abort", (Parameter("txn", TC_STRING),), TC_LONG),
        Operation("decision", (Parameter("txn", TC_STRING),), TC_STRING, read_only=True),
    ),
)


def standard_repository() -> InterfaceRepository:
    repo = InterfaceRepository()
    for interface in (
        CALCULATOR,
        LEDGER,
        BANK,
        SENSOR_FUSION,
        KVSTORE,
        SHARD_KV,
        TXN_COORDINATOR,
    ):
        repo.register(interface)
    return repo


# -- servants ----------------------------------------------------------------------


class CalculatorServant(Servant):
    interface = CALCULATOR

    def __init__(self) -> None:
        self._history: list[float] = []

    def add(self, a: float, b: float) -> float:
        return a + b

    def divide(self, a: float, b: float) -> float:
        if b == 0:
            raise UserException("IDL:demo/DivideByZero:1.0", "denominator was zero")
        return a / b

    def mean(self, xs: list[float]) -> float:
        return sum(xs) / len(xs) if xs else 0.0

    def store(self, v: float) -> None:
        self._history.append(v)

    def history(self) -> list[float]:
        return list(self._history)


class LedgerServant(Servant):
    interface = LEDGER

    def __init__(self) -> None:
        self.entries: list[str] = []

    def record(self, entry: str) -> int:
        self.entries.append(entry)
        return len(self.entries)

    def count(self) -> int:
        return len(self.entries)


class BankServant(Servant):
    """Bank whose audited deposits nest an invocation to the audit ledger."""

    interface = BANK

    def __init__(self, element: Any = None, ledger_ref: Any = None) -> None:
        self.balances: dict[str, float] = {}
        self._element = element
        self._ledger_ref = ledger_ref

    def deposit(self, account: str, amount: float) -> float:
        self.balances[account] = self.balances.get(account, 0.0) + amount
        return self.balances[account]

    def withdraw(self, account: str, amount: float) -> float:
        balance = self.balances.get(account, 0.0)
        if amount > balance:
            raise UserException(
                "IDL:demo/InsufficientFunds:1.0",
                f"balance {balance} < withdrawal {amount}",
            )
        self.balances[account] = balance - amount
        return self.balances[account]

    def balance(self, account: str) -> float:
        return self.balances.get(account, 0.0)

    def audited_deposit(self, account: str, amount: float):
        if self._element is None or self._ledger_ref is None:
            raise UserException("IDL:demo/NoLedger:1.0", "bank deployed without ledger")
        ledger = self._element.stub(self._ledger_ref)
        yield ledger.record(f"deposit {account} {amount}")
        self.balances[account] = self.balances.get(account, 0.0) + amount
        return self.balances[account]


class SensorFusionServant(Servant):
    """Weighted fusion of float readings — the inexact-values workload."""

    interface = SENSOR_FUSION

    def __init__(self) -> None:
        self._estimate = 0.0
        self._rounds = 0

    def fuse(self, readings: list[dict[str, float]]) -> float:
        if not readings:
            return self._estimate
        total_weight = sum(r["weight"] for r in readings)
        fused = sum(r["value"] * r["weight"] for r in readings) / total_weight
        # Exponentially weighted running estimate: plenty of float churn.
        self._rounds += 1
        alpha = 2.0 / (self._rounds + 1.0)
        self._estimate = alpha * fused + (1.0 - alpha) * self._estimate
        return self._estimate

    def estimate(self) -> float:
        return self._estimate

    def rounds(self) -> int:
        return self._rounds


class KvStoreServant(Servant):
    """A store whose total state size is controlled by the workload (E4)."""

    interface = KVSTORE

    def __init__(self) -> None:
        self.data: dict[str, str] = {}

    def put(self, key: str, value: str) -> None:
        self.data[key] = value

    def get(self, key: str) -> str:
        return self.data.get(key, "")

    def size(self) -> int:
        return len(self.data)

    # State hooks for object-mode checkpointing (the Castro–Liskov
    # baseline in experiment E4).
    def get_state(self) -> dict[str, str]:
        return dict(self.data)

    def set_state(self, state: dict[str, str]) -> None:
        self.data = dict(state or {})


class ShardKvServant(KvStoreServant):
    """KV participant in the BFT cross-shard commit (E20).

    ``prepare`` stages a transaction's writes for this shard's partition
    (voting no deterministically on any ``!``-prefixed key — the poison
    hook tests and chaos use to force aborts); ``commit``/``abort`` apply
    or drop the staged writes and record the decision. All three arrive
    through the shard's BFT ordering from the coordinator *domain*, so the
    participant-side request voting has already screened out records a
    Byzantine coordinator minority forged.
    """

    interface = SHARD_KV

    def __init__(self) -> None:
        super().__init__()
        self.pending: dict[str, list[tuple[str, str]]] = {}
        #: txn -> "commit" | "abort" — the chaos atomicity oracle reads this.
        self.txn_decisions: dict[str, str] = {}

    def prepare(self, txn: str, keys: list[str], values: list[str]) -> int:
        if txn in self.txn_decisions:
            return 0  # torn-prepare replay of an already-decided transaction
        if any(key.startswith("!") for key in keys):
            return 0
        self.pending[txn] = list(zip(keys, values))
        return 1

    def commit(self, txn: str) -> int:
        staged = self.pending.pop(txn, None)
        if staged is None:
            return 0  # commit without a live prepare: refuse, change nothing
        for key, value in staged:
            self.data[key] = value
        self.txn_decisions[txn] = "commit"
        return 1

    def abort(self, txn: str) -> int:
        self.pending.pop(txn, None)
        self.txn_decisions[txn] = "abort"
        return 1

    def decision(self, txn: str) -> str:
        return self.txn_decisions.get(txn, "")


# -- deployments --------------------------------------------------------------------


def build_calc_system(
    f: int = 1, seed: int = 0, heterogeneous: bool = True, **kwargs: Any
) -> ItdosSystem:
    """Replicated calculator behind the Group Manager."""
    system = ItdosSystem(
        seed=seed,
        repository=standard_repository(),
        heterogeneous=heterogeneous,
        **kwargs,
    )
    system.add_server_domain(
        "calc", f=f, servants=lambda element: {b"calc": CalculatorServant()}
    )
    return system


def build_bank_system(
    f: int = 1, seed: int = 0, heterogeneous: bool = True, **kwargs: Any
) -> ItdosSystem:
    """Bank domain nested on a ledger domain (replicated client case)."""
    system = ItdosSystem(
        seed=seed,
        repository=standard_repository(),
        heterogeneous=heterogeneous,
        **kwargs,
    )
    system.add_server_domain(
        "ledger", f=f, servants=lambda element: {b"ledger": LedgerServant()}
    )
    ledger_ref = system.ref("ledger", b"ledger")
    system.add_server_domain(
        "bank",
        f=f,
        servants=lambda element: {
            b"bank": BankServant(element=element, ledger_ref=ledger_ref)
        },
    )
    return system


def build_read_heavy_system(
    f: int = 1,
    seed: int = 0,
    readers: int = 2,
    read_fastpath: bool = True,
    **kwargs: Any,
) -> ItdosSystem:
    """KV domain tuned for the read fast path (E19): a non-voting read
    tier behind the core elements, tentative reads enabled at clients.

    Drive it with :func:`repro.workloads.generators.read_write_mix` —
    ``get``/``size`` ride the fast path, ``put`` goes through ordering.
    """
    system = ItdosSystem(
        seed=seed,
        repository=standard_repository(),
        heterogeneous=False,
        read_fastpath=read_fastpath,
        **kwargs,
    )
    system.add_server_domain(
        "kv",
        f=f,
        servants=lambda element: {b"kv": KvStoreServant()},
        readers=readers,
    )
    return system


def build_sharded_kv_system(
    shards: int = 2,
    f: int = 1,
    seed: int = 0,
    cross_shard: bool = True,
    coordinator_byzantine: dict[int, type] | None = None,
    **kwargs: Any,
) -> tuple[ItdosSystem, ShardMap]:
    """KV object space partitioned across ``shards`` replication domains (E20).

    Every shard domain hosts a :class:`ShardKvServant` and owns one key
    range of the hash space; with ``cross_shard=True`` (and more than one
    shard) a coordinator domain carries BFT atomic commit for multi-shard
    writes. Route traffic with :func:`router_for` — single-key operations
    go straight to the home shard, ``transact`` spans shards atomically.
    """
    system = ItdosSystem(
        seed=seed,
        repository=standard_repository(),
        heterogeneous=False,
        **kwargs,
    )
    shard_map = system.add_sharded_domain(
        "kv",
        shards=shards,
        f=f,
        servants=lambda element: {b"kv": ShardKvServant()},
        object_key=b"kv",
        cross_shard=cross_shard,
        coordinator_byzantine=coordinator_byzantine,
    )
    return system, shard_map


def router_for(
    system: ItdosSystem, client: Any, shard_map: ShardMap, object_key: bytes = b"kv"
) -> ShardRouter:
    """Client-side shard router bound to a simulated sharded system."""
    return ShardRouter.for_system(system, client, shard_map, object_key=object_key)


def build_kv_system(
    f: int = 1,
    seed: int = 0,
    state_mode: str = "queue",
    checkpoint_interval: int = 4,
    **kwargs: Any,
) -> ItdosSystem:
    """Key-value domain configured for one of the two state modes (E4).

    Object mode requires homogeneous platforms so that application state
    digests agree bit-for-bit in checkpoints.
    """
    system = ItdosSystem(
        seed=seed,
        repository=standard_repository(),
        heterogeneous=False,
        checkpoint_interval=checkpoint_interval,
        **kwargs,
    )
    system.add_server_domain(
        "kv",
        f=f,
        servants=lambda element: {b"kv": KvStoreServant()},
        state_mode=state_mode,
        app_state_fn=lambda element: (
            lambda: element.orb.adapter.servant_for(b"kv").get_state()
        ),
        app_restore_fn=lambda element: (
            lambda state: element.orb.adapter.servant_for(b"kv").set_state(state)
        ),
    )
    return system
