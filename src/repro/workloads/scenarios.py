"""Canonical interfaces, servants, and deployments for benchmarks/examples.

These are the workloads the paper's introduction motivates: mission-critical
services (a bank with an audit ledger), data fusion over heterogeneous
sensors (the inexact-voting case), plus a key-value store whose value size
is the knob for the state-synchronisation experiment (E4).
"""

from __future__ import annotations

from typing import Any

from repro.giop.idl import InterfaceDef, InterfaceRepository, Operation, Parameter
from repro.giop.typecodes import (
    TC_DOUBLE,
    TC_LONG,
    TC_STRING,
    TC_VOID,
    SequenceType,
    StructType,
)
from repro.itdos.bootstrap import ItdosSystem
from repro.orb.errors import UserException
from repro.orb.servant import Servant

# -- interfaces -------------------------------------------------------------------

CALCULATOR = InterfaceDef(
    "Calculator",
    (
        Operation("add", (Parameter("a", TC_DOUBLE), Parameter("b", TC_DOUBLE)), TC_DOUBLE),
        Operation("divide", (Parameter("a", TC_DOUBLE), Parameter("b", TC_DOUBLE)), TC_DOUBLE),
        Operation(
            "mean", (Parameter("xs", SequenceType(TC_DOUBLE)),), TC_DOUBLE,
            read_only=True,
        ),
        Operation("store", (Parameter("v", TC_DOUBLE),), TC_VOID),
        Operation("history", (), SequenceType(TC_DOUBLE), read_only=True),
    ),
)

LEDGER = InterfaceDef(
    "Ledger",
    (
        Operation("record", (Parameter("entry", TC_STRING),), TC_LONG),
        Operation("count", (), TC_LONG, read_only=True),
    ),
)

BANK = InterfaceDef(
    "Bank",
    (
        Operation(
            "deposit",
            (Parameter("account", TC_STRING), Parameter("amount", TC_DOUBLE)),
            TC_DOUBLE,
        ),
        Operation(
            "withdraw",
            (Parameter("account", TC_STRING), Parameter("amount", TC_DOUBLE)),
            TC_DOUBLE,
        ),
        Operation(
            "balance", (Parameter("account", TC_STRING),), TC_DOUBLE, read_only=True
        ),
        Operation(
            "audited_deposit",
            (Parameter("account", TC_STRING), Parameter("amount", TC_DOUBLE)),
            TC_DOUBLE,
        ),
    ),
)

READING = StructType(
    "Reading", (("value", TC_DOUBLE), ("weight", TC_DOUBLE))
)

SENSOR_FUSION = InterfaceDef(
    "SensorFusion",
    (
        Operation("fuse", (Parameter("readings", SequenceType(READING)),), TC_DOUBLE),
        Operation("estimate", (), TC_DOUBLE, read_only=True),
        Operation("rounds", (), TC_LONG, read_only=True),
    ),
)

KVSTORE = InterfaceDef(
    "KvStore",
    (
        Operation("put", (Parameter("key", TC_STRING), Parameter("value", TC_STRING)), TC_VOID),
        Operation("get", (Parameter("key", TC_STRING),), TC_STRING, read_only=True),
        Operation("size", (), TC_LONG, read_only=True),
    ),
)


def standard_repository() -> InterfaceRepository:
    repo = InterfaceRepository()
    for interface in (CALCULATOR, LEDGER, BANK, SENSOR_FUSION, KVSTORE):
        repo.register(interface)
    return repo


# -- servants ----------------------------------------------------------------------


class CalculatorServant(Servant):
    interface = CALCULATOR

    def __init__(self) -> None:
        self._history: list[float] = []

    def add(self, a: float, b: float) -> float:
        return a + b

    def divide(self, a: float, b: float) -> float:
        if b == 0:
            raise UserException("IDL:demo/DivideByZero:1.0", "denominator was zero")
        return a / b

    def mean(self, xs: list[float]) -> float:
        return sum(xs) / len(xs) if xs else 0.0

    def store(self, v: float) -> None:
        self._history.append(v)

    def history(self) -> list[float]:
        return list(self._history)


class LedgerServant(Servant):
    interface = LEDGER

    def __init__(self) -> None:
        self.entries: list[str] = []

    def record(self, entry: str) -> int:
        self.entries.append(entry)
        return len(self.entries)

    def count(self) -> int:
        return len(self.entries)


class BankServant(Servant):
    """Bank whose audited deposits nest an invocation to the audit ledger."""

    interface = BANK

    def __init__(self, element: Any = None, ledger_ref: Any = None) -> None:
        self.balances: dict[str, float] = {}
        self._element = element
        self._ledger_ref = ledger_ref

    def deposit(self, account: str, amount: float) -> float:
        self.balances[account] = self.balances.get(account, 0.0) + amount
        return self.balances[account]

    def withdraw(self, account: str, amount: float) -> float:
        balance = self.balances.get(account, 0.0)
        if amount > balance:
            raise UserException(
                "IDL:demo/InsufficientFunds:1.0",
                f"balance {balance} < withdrawal {amount}",
            )
        self.balances[account] = balance - amount
        return self.balances[account]

    def balance(self, account: str) -> float:
        return self.balances.get(account, 0.0)

    def audited_deposit(self, account: str, amount: float):
        if self._element is None or self._ledger_ref is None:
            raise UserException("IDL:demo/NoLedger:1.0", "bank deployed without ledger")
        ledger = self._element.stub(self._ledger_ref)
        yield ledger.record(f"deposit {account} {amount}")
        self.balances[account] = self.balances.get(account, 0.0) + amount
        return self.balances[account]


class SensorFusionServant(Servant):
    """Weighted fusion of float readings — the inexact-values workload."""

    interface = SENSOR_FUSION

    def __init__(self) -> None:
        self._estimate = 0.0
        self._rounds = 0

    def fuse(self, readings: list[dict[str, float]]) -> float:
        if not readings:
            return self._estimate
        total_weight = sum(r["weight"] for r in readings)
        fused = sum(r["value"] * r["weight"] for r in readings) / total_weight
        # Exponentially weighted running estimate: plenty of float churn.
        self._rounds += 1
        alpha = 2.0 / (self._rounds + 1.0)
        self._estimate = alpha * fused + (1.0 - alpha) * self._estimate
        return self._estimate

    def estimate(self) -> float:
        return self._estimate

    def rounds(self) -> int:
        return self._rounds


class KvStoreServant(Servant):
    """A store whose total state size is controlled by the workload (E4)."""

    interface = KVSTORE

    def __init__(self) -> None:
        self.data: dict[str, str] = {}

    def put(self, key: str, value: str) -> None:
        self.data[key] = value

    def get(self, key: str) -> str:
        return self.data.get(key, "")

    def size(self) -> int:
        return len(self.data)

    # State hooks for object-mode checkpointing (the Castro–Liskov
    # baseline in experiment E4).
    def get_state(self) -> dict[str, str]:
        return dict(self.data)

    def set_state(self, state: dict[str, str]) -> None:
        self.data = dict(state or {})


# -- deployments --------------------------------------------------------------------


def build_calc_system(
    f: int = 1, seed: int = 0, heterogeneous: bool = True, **kwargs: Any
) -> ItdosSystem:
    """Replicated calculator behind the Group Manager."""
    system = ItdosSystem(
        seed=seed,
        repository=standard_repository(),
        heterogeneous=heterogeneous,
        **kwargs,
    )
    system.add_server_domain(
        "calc", f=f, servants=lambda element: {b"calc": CalculatorServant()}
    )
    return system


def build_bank_system(
    f: int = 1, seed: int = 0, heterogeneous: bool = True, **kwargs: Any
) -> ItdosSystem:
    """Bank domain nested on a ledger domain (replicated client case)."""
    system = ItdosSystem(
        seed=seed,
        repository=standard_repository(),
        heterogeneous=heterogeneous,
        **kwargs,
    )
    system.add_server_domain(
        "ledger", f=f, servants=lambda element: {b"ledger": LedgerServant()}
    )
    ledger_ref = system.ref("ledger", b"ledger")
    system.add_server_domain(
        "bank",
        f=f,
        servants=lambda element: {
            b"bank": BankServant(element=element, ledger_ref=ledger_ref)
        },
    )
    return system


def build_read_heavy_system(
    f: int = 1,
    seed: int = 0,
    readers: int = 2,
    read_fastpath: bool = True,
    **kwargs: Any,
) -> ItdosSystem:
    """KV domain tuned for the read fast path (E19): a non-voting read
    tier behind the core elements, tentative reads enabled at clients.

    Drive it with :func:`repro.workloads.generators.read_write_mix` —
    ``get``/``size`` ride the fast path, ``put`` goes through ordering.
    """
    system = ItdosSystem(
        seed=seed,
        repository=standard_repository(),
        heterogeneous=False,
        read_fastpath=read_fastpath,
        **kwargs,
    )
    system.add_server_domain(
        "kv",
        f=f,
        servants=lambda element: {b"kv": KvStoreServant()},
        readers=readers,
    )
    return system


def build_kv_system(
    f: int = 1,
    seed: int = 0,
    state_mode: str = "queue",
    checkpoint_interval: int = 4,
    **kwargs: Any,
) -> ItdosSystem:
    """Key-value domain configured for one of the two state modes (E4).

    Object mode requires homogeneous platforms so that application state
    digests agree bit-for-bit in checkpoints.
    """
    system = ItdosSystem(
        seed=seed,
        repository=standard_repository(),
        heterogeneous=False,
        checkpoint_interval=checkpoint_interval,
        **kwargs,
    )
    system.add_server_domain(
        "kv",
        f=f,
        servants=lambda element: {b"kv": KvStoreServant()},
        state_mode=state_mode,
        app_state_fn=lambda element: (
            lambda: element.orb.adapter.servant_for(b"kv").get_state()
        ),
        app_restore_fn=lambda element: (
            lambda state: element.orb.adapter.servant_for(b"kv").set_state(state)
        ),
    )
    return system
