"""Workload generators and canonical benchmark scenarios."""

from repro.workloads.generators import (
    ClosedLoopDriver,
    float_vectors,
    random_strings,
    sensor_readings,
)
from repro.workloads.scenarios import (
    BANK,
    CALCULATOR,
    KVSTORE,
    LEDGER,
    SENSOR_FUSION,
    BankServant,
    CalculatorServant,
    KvStoreServant,
    LedgerServant,
    SensorFusionServant,
    build_bank_system,
    build_calc_system,
    build_kv_system,
    standard_repository,
)

__all__ = [
    "BANK",
    "BankServant",
    "CALCULATOR",
    "CalculatorServant",
    "ClosedLoopDriver",
    "KVSTORE",
    "KvStoreServant",
    "LEDGER",
    "LedgerServant",
    "SENSOR_FUSION",
    "SensorFusionServant",
    "build_bank_system",
    "build_calc_system",
    "build_kv_system",
    "float_vectors",
    "random_strings",
    "sensor_readings",
]
