"""Exporters: JSONL dumps and human-readable tables for telemetry data.

Every line of a JSONL export is self-describing via a ``"record"`` field
(``metric`` / ``span`` / ``health_element`` / ``health_event`` /
``audit_entry`` / ``audit_chain`` / ``suspicion``), so one file can hold a
whole run and ``tools/generate_report.py`` can fold it into the results
report without guessing. An exported audit chain remains offline-verifiable:
``repro.obs.audit.verify_chain`` re-checks the ``audit_entry`` records as
read back from disk.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:
    from repro.obs.telemetry import Telemetry
    from repro.obs.tracing import Tracer


def metric_records(registry: Any) -> list[dict[str, Any]]:
    out = []
    for entry in registry.collect():
        record = {"record": "metric"}
        record.update(entry)
        out.append(record)
    return out


def span_records(tracer: Any) -> list[dict[str, Any]]:
    out = []
    for span in getattr(tracer, "spans", []):
        record = {"record": "span"}
        record.update(span.to_dict())
        out.append(record)
    return out


def health_records(board: Any) -> list[dict[str, Any]]:
    snapshot = board.as_dict()
    out: list[dict[str, Any]] = []
    for element in snapshot["elements"]:
        record = {"record": "health_element"}
        record.update(element)
        out.append(record)
    for event in snapshot["events"]:
        record = {"record": "health_event"}
        record.update(event)
        out.append(record)
    return out


def audit_records(audit: Any) -> list[dict[str, Any]]:
    """``audit_entry`` per chain link plus one ``audit_chain`` stat line."""
    return list(audit.to_records())


def detect_records(detect: Any) -> list[dict[str, Any]]:
    """One ``suspicion`` record per element the estimator tracks."""
    return list(detect.to_records())


def telemetry_records(telemetry: "Telemetry") -> list[dict[str, Any]]:
    """Everything one run produced, as one flat JSONL-ready list."""
    return (
        metric_records(telemetry.registry)
        + span_records(telemetry.tracer)
        + health_records(telemetry.health)
        + audit_records(telemetry.audit)
        + detect_records(telemetry.detect)
    )


def to_jsonl(records: Iterable[dict[str, Any]]) -> str:
    return "".join(json.dumps(record, sort_keys=True) + "\n" for record in records)


def write_jsonl(path: str, records: Iterable[dict[str, Any]]) -> int:
    """Write records to ``path``; returns the number of lines written."""
    text = to_jsonl(records)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text.count("\n")


def read_jsonl(path: str) -> list[dict[str, Any]]:
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


TELEMETRY_SUFFIX = ".telemetry.jsonl"


def node_telemetry_files(directory: str) -> dict[str, str]:
    """Map node id → path for every ``<node>.telemetry.jsonl`` in a dir.

    This is the reader side of the per-process exports left behind by
    ``python -m repro serve`` (see :mod:`repro.net.node`).
    """
    out: dict[str, str] = {}
    for name in sorted(os.listdir(directory)):
        if name.endswith(TELEMETRY_SUFFIX):
            out[name[: -len(TELEMETRY_SUFFIX)]] = os.path.join(directory, name)
    return out


def read_node_records(directory: str) -> dict[str, list[dict[str, Any]]]:
    """JSONL records per node, for every node that exported telemetry."""
    return {
        node: read_jsonl(path)
        for node, path in node_telemetry_files(directory).items()
    }


def tracer_from_records(records: Iterable[dict[str, Any]]) -> "Tracer":
    """Rebuild an offline, query/render-capable tracer from span records.

    The returned tracer holds :class:`~repro.obs.tracing.Span` objects
    reconstructed from ``"record": "span"`` lines; ``tree``/``render``/
    ``find`` all work as they would on the live tracer.
    """
    from repro.obs.tracing import Span, Tracer

    tracer = Tracer()
    for record in records:
        if record.get("record") != "span":
            continue
        tracer.spans.append(
            Span(
                trace_id=record["trace_id"],
                span_id=record["span_id"],
                parent_id=record.get("parent_id"),
                name=record["name"],
                pid=record.get("pid", ""),
                start=record["start"],
                end=record.get("end"),
                attrs=record.get("attrs") or {},
            )
        )
    return tracer


class FoldedMetrics:
    """Registry-shaped view over metric records folded from many nodes.

    Duck-types ``collect()`` so :func:`render_metrics_table` renders the
    combined table; every entry carries a ``node`` label identifying which
    process reported it.
    """

    def __init__(self, entries: list[dict[str, Any]]) -> None:
        self._entries = entries

    def collect(self) -> list[dict[str, Any]]:
        return list(self._entries)


def fold_metric_records(
    by_node: dict[str, list[dict[str, Any]]]
) -> FoldedMetrics:
    """Fold per-node ``metric`` records into one :class:`FoldedMetrics`."""
    entries: list[dict[str, Any]] = []
    for node in sorted(by_node):
        for record in by_node[node]:
            if record.get("record") != "metric":
                continue
            entry = {k: v for k, v in record.items() if k != "record"}
            labels = dict(entry.get("labels") or {})
            labels["node"] = node
            entry["labels"] = labels
            entries.append(entry)
    return FoldedMetrics(entries)


#: Synthetic shard label values minted by :func:`aggregate_by_shard`.
CLUSTER_SHARD = "cluster"
UNSHARDED = "unsharded"


def aggregate_by_shard(
    by_node: dict[str, list[dict[str, Any]]]
) -> FoldedMetrics:
    """Aggregate per-node metric records per shard plus cluster-wide (E20).

    Nodes of a sharded deployment stamp every metric with a ``shard``
    label (the shard domain the process belongs to, or ``gm``/``client``);
    records missing the label group under ``shard="unsharded"``. Counters
    and gauges sum within one (metric, shard, residual-labels) group.
    Histograms merge exactly on count/sum/min/max — mean is recomputed
    from the merged totals — while the reported p95 is the *maximum* of
    the per-node p95s (a conservative bound: true quantiles cannot be
    reconstructed from summaries). A parallel ``shard="cluster"`` group
    carries the totals across every shard.
    """
    groups: dict[tuple, dict[str, Any]] = {}

    def feed(entry: dict[str, Any], shard: str) -> None:
        labels = {
            k: v
            for k, v in (entry.get("labels") or {}).items()
            if k not in ("node", "shard")
        }
        key = (entry["metric"], entry["kind"], shard, tuple(sorted(labels.items())))
        agg = groups.get(key)
        if agg is None:
            agg = groups[key] = {
                "value": 0.0,
                "count": 0.0,
                "sum": 0.0,
                "min": float("inf"),
                "max": float("-inf"),
                "p95": 0.0,
            }
        if entry["kind"] == "histogram":
            count = float(entry.get("count", 0.0))
            agg["count"] += count
            agg["sum"] += float(entry.get("mean", 0.0)) * count
            agg["min"] = min(agg["min"], float(entry.get("min", float("inf"))))
            agg["max"] = max(agg["max"], float(entry.get("max", float("-inf"))))
            agg["p95"] = max(agg["p95"], float(entry.get("p95", 0.0)))
        else:
            agg["value"] += float(entry.get("value", 0.0))

    for node in sorted(by_node):
        for record in by_node[node]:
            if record.get("record") != "metric":
                continue
            shard = (record.get("labels") or {}).get("shard") or UNSHARDED
            feed(record, shard)
            feed(record, CLUSTER_SHARD)

    entries: list[dict[str, Any]] = []
    for metric, kind, shard, label_items in sorted(groups):
        agg = groups[(metric, kind, shard, label_items)]
        labels = dict(label_items)
        labels["shard"] = shard
        entry: dict[str, Any] = {"metric": metric, "kind": kind, "labels": labels}
        if kind == "histogram":
            count = agg["count"]
            entry["count"] = count
            entry["mean"] = agg["sum"] / count if count else 0.0
            entry["p95"] = agg["p95"]
            if count:
                entry["min"] = agg["min"]
                entry["max"] = agg["max"]
        else:
            entry["value"] = agg["value"]
        entries.append(entry)
    return FoldedMetrics(entries)


def fold_node_records(
    by_node: dict[str, list[dict[str, Any]]]
) -> list[dict[str, Any]]:
    """Flatten per-node records into one list, tagging each with its node."""
    out: list[dict[str, Any]] = []
    for node in sorted(by_node):
        for record in by_node[node]:
            tagged = dict(record)
            tagged["node"] = node
            out.append(tagged)
    return out


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def render_metrics_table(registry: Any) -> str:
    """Fixed-width table of every metric child, grouped by family."""
    entries = registry.collect()
    if not entries:
        return "no metrics recorded"
    rows: list[tuple[str, str, str]] = []
    for entry in entries:
        name = entry["metric"] + _format_labels(entry["labels"])
        if entry["kind"] == "histogram":
            value = (
                f"count={_format_value(entry['count'])} "
                f"mean={entry['mean']:.6g} p95={entry['p95']:.6g}"
            )
        else:
            value = _format_value(entry["value"])
        rows.append((name, entry["kind"], value))
    name_w = max(len(r[0]) for r in rows)
    kind_w = max(len(r[1]) for r in rows)
    lines = [f"{'metric'.ljust(name_w)}  {'kind'.ljust(kind_w)}  value"]
    lines.append(f"{'-' * name_w}  {'-' * kind_w}  -----")
    lines.extend(
        f"{name.ljust(name_w)}  {kind.ljust(kind_w)}  {value}"
        for name, kind, value in rows
    )
    return "\n".join(lines)
