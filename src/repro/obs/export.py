"""Exporters: JSONL dumps and human-readable tables for telemetry data.

Every line of a JSONL export is self-describing via a ``"record"`` field
(``metric`` / ``span`` / ``health_element`` / ``health_event`` /
``audit_entry`` / ``audit_chain`` / ``suspicion``), so one file can hold a
whole run and ``tools/generate_report.py`` can fold it into the results
report without guessing. An exported audit chain remains offline-verifiable:
``repro.obs.audit.verify_chain`` re-checks the ``audit_entry`` records as
read back from disk.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:
    from repro.obs.telemetry import Telemetry


def metric_records(registry: Any) -> list[dict[str, Any]]:
    out = []
    for entry in registry.collect():
        record = {"record": "metric"}
        record.update(entry)
        out.append(record)
    return out


def span_records(tracer: Any) -> list[dict[str, Any]]:
    out = []
    for span in getattr(tracer, "spans", []):
        record = {"record": "span"}
        record.update(span.to_dict())
        out.append(record)
    return out


def health_records(board: Any) -> list[dict[str, Any]]:
    snapshot = board.as_dict()
    out: list[dict[str, Any]] = []
    for element in snapshot["elements"]:
        record = {"record": "health_element"}
        record.update(element)
        out.append(record)
    for event in snapshot["events"]:
        record = {"record": "health_event"}
        record.update(event)
        out.append(record)
    return out


def audit_records(audit: Any) -> list[dict[str, Any]]:
    """``audit_entry`` per chain link plus one ``audit_chain`` stat line."""
    return list(audit.to_records())


def detect_records(detect: Any) -> list[dict[str, Any]]:
    """One ``suspicion`` record per element the estimator tracks."""
    return list(detect.to_records())


def telemetry_records(telemetry: "Telemetry") -> list[dict[str, Any]]:
    """Everything one run produced, as one flat JSONL-ready list."""
    return (
        metric_records(telemetry.registry)
        + span_records(telemetry.tracer)
        + health_records(telemetry.health)
        + audit_records(telemetry.audit)
        + detect_records(telemetry.detect)
    )


def to_jsonl(records: Iterable[dict[str, Any]]) -> str:
    return "".join(json.dumps(record, sort_keys=True) + "\n" for record in records)


def write_jsonl(path: str, records: Iterable[dict[str, Any]]) -> int:
    """Write records to ``path``; returns the number of lines written."""
    text = to_jsonl(records)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text.count("\n")


def read_jsonl(path: str) -> list[dict[str, Any]]:
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def render_metrics_table(registry: Any) -> str:
    """Fixed-width table of every metric child, grouped by family."""
    entries = registry.collect()
    if not entries:
        return "no metrics recorded"
    rows: list[tuple[str, str, str]] = []
    for entry in entries:
        name = entry["metric"] + _format_labels(entry["labels"])
        if entry["kind"] == "histogram":
            value = (
                f"count={_format_value(entry['count'])} "
                f"mean={entry['mean']:.6g} p95={entry['p95']:.6g}"
            )
        else:
            value = _format_value(entry["value"])
        rows.append((name, entry["kind"], value))
    name_w = max(len(r[0]) for r in rows)
    kind_w = max(len(r[1]) for r in rows)
    lines = [f"{'metric'.ljust(name_w)}  {'kind'.ljust(kind_w)}  value"]
    lines.append(f"{'-' * name_w}  {'-' * kind_w}  -----")
    lines.extend(
        f"{name.ljust(name_w)}  {kind.ljust(kind_w)}  {value}"
        for name, kind, value in rows
    )
    return "\n".join(lines)
