"""Per-element health: dissent, view changes, checkpoint lag, expulsions.

The :class:`HealthBoard` is the operator-facing rollup of the paper's
intrusion-tolerance story. Voters report dissenting replies, BFT replicas
report view changes and checkpoint progress, and the Group Manager reports
expulsions/readmissions — each also lands in an event log carrying the
trace/span of the decision that caused it, so "why was calc-e2 expelled?"
is answerable from the board alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.tracing import TraceContext


@dataclass
class ElementHealth:
    """Rolling state for one replicated element (or BFT replica)."""

    pid: str
    dissents: int = 0
    view_changes: int = 0
    last_view: int = 0
    stable_seq: int = 0
    checkpoint_lag: int = 0
    expelled: bool = False
    readmitted: bool = False
    # Fault-estimation rollup (repro.obs.detect): current suspicion score,
    # audit evidence count, and the most damning evidence kind seen.
    suspicion: float = 0.0
    evidence: int = 0
    hard_evidence: int = 0
    last_evidence: str = ""

    def as_dict(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "dissents": self.dissents,
            "view_changes": self.view_changes,
            "last_view": self.last_view,
            "stable_seq": self.stable_seq,
            "checkpoint_lag": self.checkpoint_lag,
            "expelled": self.expelled,
            "readmitted": self.readmitted,
            "suspicion": self.suspicion,
            "evidence": self.evidence,
            "hard_evidence": self.hard_evidence,
            "last_evidence": self.last_evidence,
        }


@dataclass(frozen=True)
class HealthEvent:
    """One notable moment: an expulsion, readmission, or view change."""

    time: float
    kind: str
    element: str
    detail: str = ""
    trace_id: int | None = None
    span_id: int | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "time": self.time,
            "kind": self.kind,
            "element": self.element,
            "detail": self.detail,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
        }


@dataclass
class HealthBoard:
    """The registry of per-element health plus the decision event log."""

    elements: dict[str, ElementHealth] = field(default_factory=dict)
    events: list[HealthEvent] = field(default_factory=list)
    # Highest communication-key membership epoch observed (Group Manager
    # rollup): every expulsion/readmission advances it.
    key_epoch: int = 0

    enabled = True

    def element(self, pid: str) -> ElementHealth:
        health = self.elements.get(pid)
        if health is None:
            health = ElementHealth(pid=pid)
            self.elements[pid] = health
        return health

    def _event(
        self,
        time: float,
        kind: str,
        element: str,
        detail: str,
        ctx: TraceContext | None,
    ) -> None:
        self.events.append(
            HealthEvent(
                time=time,
                kind=kind,
                element=element,
                detail=detail,
                trace_id=ctx.trace_id if ctx else None,
                span_id=ctx.span_id if ctx else None,
            )
        )

    # -- reporters -----------------------------------------------------------

    def record_dissent(self, pid: str) -> None:
        self.element(pid).dissents += 1

    def record_suspicion(self, pid: str, score: float) -> None:
        self.element(pid).suspicion = score

    def record_evidence(
        self,
        pid: str,
        kind: str,
        hard: bool = False,
        time: float = 0.0,
        ctx: TraceContext | None = None,
    ) -> None:
        health = self.element(pid)
        health.evidence += 1
        if hard:
            health.hard_evidence += 1
        # Hard evidence is never displaced by later soft noise.
        if hard or not health.hard_evidence:
            health.last_evidence = kind
        if hard:
            self._event(time, "evidence", pid, kind, ctx)

    def record_view_change(
        self,
        pid: str,
        new_view: int,
        time: float = 0.0,
        ctx: TraceContext | None = None,
    ) -> None:
        health = self.element(pid)
        health.view_changes += 1
        health.last_view = max(health.last_view, new_view)
        self._event(time, "view_change", pid, f"view={new_view}", ctx)

    def record_checkpoint(self, pid: str, stable_seq: int, lag: int) -> None:
        health = self.element(pid)
        health.stable_seq = max(health.stable_seq, stable_seq)
        health.checkpoint_lag = lag

    def record_expulsion(
        self,
        pids: Iterable[str],
        time: float = 0.0,
        ctx: TraceContext | None = None,
        detail: str = "",
    ) -> int:
        """Mark elements expelled; dedups replayed GM executions.

        Returns how many elements newly transitioned (every replica of the
        GM executes the same ordered expulsion, so only the first report
        counts).
        """
        newly = 0
        for pid in pids:
            health = self.element(pid)
            if health.expelled:
                continue
            health.expelled = True
            newly += 1
            self._event(time, "expulsion", pid, detail, ctx)
        return newly

    def record_readmission(
        self,
        pids: Iterable[str],
        time: float = 0.0,
        ctx: TraceContext | None = None,
        detail: str = "",
    ) -> int:
        newly = 0
        for pid in pids:
            health = self.element(pid)
            if not health.expelled or health.readmitted:
                continue
            health.expelled = False
            health.readmitted = True
            newly += 1
            self._event(time, "readmission", pid, detail, ctx)
        return newly

    def record_key_epoch(
        self,
        epoch: int,
        time: float = 0.0,
        ctx: TraceContext | None = None,
        detail: str = "",
    ) -> bool:
        """Roll the key epoch forward; dedups replayed GM executions.

        Returns True only on the first report of a new epoch (every GM
        replica executes the same ordered membership change).
        """
        if epoch <= self.key_epoch:
            return False
        self.key_epoch = epoch
        self._event(time, "key_epoch", "gm", detail or f"epoch={epoch}", ctx)
        return True

    # -- queries / rendering -------------------------------------------------

    def expelled(self) -> list[str]:
        return [pid for pid, h in sorted(self.elements.items()) if h.expelled]

    def reset(self) -> None:
        self.elements.clear()
        self.events.clear()
        self.key_epoch = 0

    def events_of(self, kind: str) -> list[HealthEvent]:
        return [e for e in self.events if e.kind == kind]

    def as_dict(self) -> dict[str, Any]:
        return {
            "elements": [h.as_dict() for _, h in sorted(self.elements.items())],
            "events": [e.as_dict() for e in self.events],
            "key_epoch": self.key_epoch,
        }

    def render(self) -> str:
        if not self.elements and not self.events:
            return "health board: no data"
        headers = (
            "element",
            "dissents",
            "view_chg",
            "stable_seq",
            "ckpt_lag",
            "suspicion",
            "evidence",
            "status",
        )
        rows = []
        for pid in sorted(self.elements):
            h = self.elements[pid]
            status = "expelled" if h.expelled else ("readmitted" if h.readmitted else "ok")
            evidence = ""
            if h.evidence:
                strength = f"{h.hard_evidence} hard" if h.hard_evidence else "soft"
                evidence = f"{h.evidence} ({strength}: {h.last_evidence})"
            rows.append(
                (
                    pid,
                    str(h.dissents),
                    str(h.view_changes),
                    str(h.stable_seq),
                    str(h.checkpoint_lag),
                    f"{h.suspicion:.2f}",
                    evidence,
                    status,
                )
            )
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
            for i in range(len(headers))
        ]

        def fmt(cells: tuple[str, ...]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

        lines = [fmt(headers), fmt(tuple("-" * w for w in widths))]
        lines.extend(fmt(row) for row in rows)
        if self.key_epoch:
            lines.append("")
            lines.append(f"key epoch: {self.key_epoch}")
        if self.events:
            lines.append("")
            lines.append("events:")
            for event in self.events:
                span = (
                    f" trace={event.trace_id} span={event.span_id}"
                    if event.trace_id is not None
                    else ""
                )
                detail = f" {event.detail}" if event.detail else ""
                lines.append(
                    f"  t={event.time * 1000:.3f}ms {event.kind} {event.element}{detail}{span}"
                )
        return "\n".join(lines)


class NullHealthBoard:
    """Do-nothing board behind a disabled Telemetry."""

    __slots__ = ()

    enabled = False
    elements: dict = {}
    events: list = []
    key_epoch = 0

    def element(self, pid: str) -> None:
        return None

    def record_dissent(self, pid: str) -> None:
        pass

    def record_suspicion(self, pid: str, score: float) -> None:
        pass

    def record_evidence(self, pid: str, kind: str, hard: bool = False, **kwargs: Any) -> None:
        pass

    def record_view_change(self, pid: str, new_view: int, **kwargs: Any) -> None:
        pass

    def record_checkpoint(self, pid: str, stable_seq: int, lag: int) -> None:
        pass

    def record_expulsion(self, pids: Iterable[str], **kwargs: Any) -> int:
        return 0

    def record_readmission(self, pids: Iterable[str], **kwargs: Any) -> int:
        return 0

    def record_key_epoch(self, epoch: int, **kwargs: Any) -> bool:
        return False

    def expelled(self) -> list:
        return []

    def events_of(self, kind: str) -> list:
        return []

    def as_dict(self) -> dict[str, Any]:
        return {"elements": [], "events": [], "key_epoch": 0}

    def render(self) -> str:
        return "health board disabled"

    def reset(self) -> None:
        pass


NULL_HEALTH = NullHealthBoard()
