"""Causal request tracing: spans, trace trees, and the span store.

One *trace* is one logical invocation (``stub.add(2, 3)``) as it travels
client stub → SMIOP → PBFT phases → servant dispatch → reply voting. Each
instrumented step is a :class:`Span` carrying ``(trace_id, span_id)``;
causality is the ``parent_id`` chain, handed across layers as a
:class:`TraceContext`.

The simulator is single-threaded and discrete-event, so two kinds of span
exist in practice:

* **interval spans** (``begin``/``end``) whose endpoints land on different
  scheduler events — real simulated-time durations (a PBFT prepare phase,
  an SMIOP round trip);
* **point spans** (``point``/``record``) marking one instant (a dispatch,
  a vote decision, a Group Manager verdict).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

DEFAULT_SPAN_CAPACITY = 100_000


@dataclass(frozen=True)
class TraceContext:
    """The propagated causal handle: which trace, which parent span."""

    trace_id: int
    span_id: int


class Span:
    """One named step of one trace."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "pid", "start", "end", "attrs")

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: int | None,
        name: str,
        pid: str,
        start: float,
        end: float | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.pid = pid
        self.start = start
        self.end = end
        self.attrs = attrs or {}

    @property
    def ctx(self) -> TraceContext:
        """Context for parenting children under this span."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "pid": self.pid,
            "start": self.start,
            "end": self.end if self.end is not None else self.start,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        return (
            f"<Span {self.name} trace={self.trace_id} id={self.span_id} "
            f"pid={self.pid} t={self.start:.6f}>"
        )


class Tracer:
    """Allocates ids, stores finished and open spans, answers queries."""

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        capacity: int = DEFAULT_SPAN_CAPACITY,
    ) -> None:
        self._clock = clock or (lambda: 0.0)
        self.capacity = capacity
        self.spans: list[Span] = []
        self.dropped = 0
        self._next_trace_id = 1
        self._next_span_id = 1

    @property
    def enabled(self) -> bool:
        return True

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def now(self) -> float:
        return self._clock()

    # -- span creation -------------------------------------------------------

    def _alloc(self, parent: TraceContext | None) -> tuple[int, int, int | None]:
        if parent is None:
            trace_id = self._next_trace_id
            self._next_trace_id += 1
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span_id = self._next_span_id
        self._next_span_id += 1
        return trace_id, span_id, parent_id

    def begin(
        self,
        name: str,
        parent: TraceContext | None = None,
        pid: str = "",
        start: float | None = None,
        **attrs: Any,
    ) -> Span | None:
        """Open an interval span (close it with :meth:`end`)."""
        if len(self.spans) >= self.capacity:
            self.dropped += 1
            return None
        trace_id, span_id, parent_id = self._alloc(parent)
        span = Span(
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            pid=pid,
            start=self.now() if start is None else start,
            attrs=attrs,
        )
        self.spans.append(span)
        return span

    def end(self, span: Span | None, end: float | None = None) -> None:
        if span is not None and span.end is None:
            span.end = self.now() if end is None else end

    def point(
        self,
        name: str,
        parent: TraceContext | None = None,
        pid: str = "",
        **attrs: Any,
    ) -> Span | None:
        """A zero-duration span at the current instant."""
        span = self.begin(name, parent=parent, pid=pid, **attrs)
        self.end(span)
        return span

    def record(
        self,
        name: str,
        start: float,
        end: float | None = None,
        parent: TraceContext | None = None,
        pid: str = "",
        **attrs: Any,
    ) -> Span | None:
        """A retroactive span whose interval is already known."""
        span = self.begin(name, parent=parent, pid=pid, start=start, **attrs)
        self.end(span, end=start if end is None else end)
        return span

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def trace_ids(self) -> list[int]:
        seen: dict[int, None] = {}
        for span in self.spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def spans_of(self, trace_id: int) -> list[Span]:
        return [s for s in self.spans if s.trace_id == trace_id]

    def find(
        self,
        name: str | None = None,
        trace_id: int | None = None,
        pid: str | None = None,
    ) -> list[Span]:
        out = []
        for span in self.spans:
            if name is not None and span.name != name:
                continue
            if trace_id is not None and span.trace_id != trace_id:
                continue
            if pid is not None and span.pid != pid:
                continue
            out.append(span)
        return out

    def span(self, span_id: int) -> Span | None:
        for candidate in self.spans:
            if candidate.span_id == span_id:
                return candidate
        return None

    def children(self, span: Span) -> list[Span]:
        return [
            s
            for s in self.spans
            if s.parent_id == span.span_id and s.trace_id == span.trace_id
        ]

    def roots(self, trace_id: int) -> list[Span]:
        """Spans of a trace with no stored parent (orphans included)."""
        present = {s.span_id for s in self.spans if s.trace_id == trace_id}
        return [
            s
            for s in self.spans
            if s.trace_id == trace_id
            and (s.parent_id is None or s.parent_id not in present)
        ]

    def tree(self, trace_id: int) -> list[tuple[Span, list]]:
        """Nested ``(span, children)`` pairs, children in start order."""

        def expand(span: Span) -> tuple[Span, list]:
            kids = sorted(self.children(span), key=lambda s: (s.start, s.span_id))
            return (span, [expand(k) for k in kids])

        return [expand(root) for root in
                sorted(self.roots(trace_id), key=lambda s: (s.start, s.span_id))]

    # -- rendering -----------------------------------------------------------

    def render(self, trace_id: int) -> str:
        """ASCII tree of one trace, with times and key attributes."""
        spans = self.spans_of(trace_id)
        if not spans:
            return f"trace {trace_id}: no spans"
        t0 = min(s.start for s in spans)
        t1 = max(s.end if s.end is not None else s.start for s in spans)
        lines = [
            f"trace {trace_id} — {len(spans)} spans, "
            f"{(t1 - t0) * 1000:.3f} ms simulated"
        ]

        def attr_text(span: Span) -> str:
            parts = [f"{k}={span.attrs[k]}" for k in sorted(span.attrs)]
            return (" " + " ".join(parts)) if parts else ""

        def draw(node: tuple[Span, list], prefix: str, last: bool) -> None:
            span, kids = node
            connector = "└─ " if last else "├─ "
            duration = (
                f" +{span.duration * 1000:.3f}ms" if span.duration > 0 else ""
            )
            lines.append(
                f"{prefix}{connector}{span.name} [{span.pid}] "
                f"@{(span.start - t0) * 1000:.3f}ms{duration}{attr_text(span)}"
            )
            child_prefix = prefix + ("   " if last else "│  ")
            for i, kid in enumerate(kids):
                draw(kid, child_prefix, i == len(kids) - 1)

        forest = self.tree(trace_id)
        for i, node in enumerate(forest):
            draw(node, "", i == len(forest) - 1)
        if self.dropped:
            lines.append(f"... {self.dropped} spans dropped (capacity {self.capacity})")
        return "\n".join(lines)

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0


class NullTracer:
    """Do-nothing tracer behind a disabled Telemetry."""

    __slots__ = ()

    enabled = False
    spans: list = []
    dropped = 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        pass

    def begin(self, name: str, **kwargs: Any) -> None:
        return None

    def end(self, span: Any, end: float | None = None) -> None:
        pass

    def point(self, name: str, **kwargs: Any) -> None:
        return None

    def record(self, name: str, start: float, **kwargs: Any) -> None:
        return None

    def trace_ids(self) -> list:
        return []

    def spans_of(self, trace_id: int) -> list:
        return []

    def find(self, **kwargs: Any) -> list:
        return []

    def tree(self, trace_id: int) -> list:
        return []

    def render(self, trace_id: int) -> str:
        return "tracing disabled"

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
