"""The accountable intrusion-evidence log: hash-chained, re-verifiable.

SecureSMART's argument (PAPERS.md) is that a BFT substrate needs an
*accountability* layer: protocol messages that prove misbehavior should be
turned into durable, attributable evidence rather than consumed and
forgotten. The :class:`AuditLog` is that layer for this repro. Every entry
records one observation of protocol-visible misbehavior — an equivocating
pre-prepare, a validly-signed dissenting reply, an invalid DPRF share, an
authentication reject, a fence violation — and carries enough of the
offending material (hex-encoded signed bytes) to re-check the accusation
offline.

Tamper evidence is a hash chain: each entry's digest covers the previous
entry's digest plus a canonical JSON encoding of its own content, so
editing, dropping, or reordering any entry breaks verification of every
later one. The chain verifies from the genesis digest alone — no key
material needed — while signature-carrying evidence additionally re-verifies
against the system keyring via :meth:`AuditLog.verify_signatures`.

Entries are *hard* or *soft*. Hard evidence is attributable under the fault
model (a correct network and honest sender cannot produce it): a valid
signature over a dissenting reply value, a digest-consistent conflicting
pre-prepare, a DPRF share that decrypted under the pairwise key but fails
share verification. Soft evidence (bad MACs, undecryptable replies,
mismatched digests) is indistinguishable from line noise and only feeds the
statistical estimators in :mod:`repro.obs.detect` — accusations are built
from hard evidence alone, which is what keeps the false-accusation rate of
honest elements at zero by construction.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

#: Entries retained before *soft* evidence is dropped (hard evidence is
#: always admitted — an accusation must never be lost to log pressure).
DEFAULT_AUDIT_CAPACITY = 4096

#: The chain's genesis "previous digest".
GENESIS = "0" * 64


def _jsonify(value: Any) -> Any:
    """Evidence payloads become JSON-safe: bytes hex-encode, tuples listify."""
    if isinstance(value, (bytes, bytearray)):
        return bytes(value).hex()
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def _entry_digest(body: dict[str, Any]) -> str:
    """Digest over the canonical JSON of everything except the digest."""
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class AuditEntry:
    """One observation of protocol-visible misbehavior."""

    index: int
    time: float
    kind: str  # equivocation | vote-dissent | invalid-share | invalid-auth | ...
    accused: str
    reporter: str = ""
    hard: bool = False
    detail: str = ""
    evidence: dict[str, Any] = field(default_factory=dict)
    prev: str = GENESIS
    digest: str = ""

    def body(self) -> dict[str, Any]:
        """The digested content: every field except ``digest`` itself."""
        return {
            "index": self.index,
            "time": self.time,
            "kind": self.kind,
            "accused": self.accused,
            "reporter": self.reporter,
            "hard": self.hard,
            "detail": self.detail,
            "evidence": self.evidence,
            "prev": self.prev,
        }

    def as_dict(self) -> dict[str, Any]:
        out = self.body()
        out["digest"] = self.digest
        return out


class AuditLog:
    """Append-only, hash-chained evidence log for one simulation."""

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        capacity: int = DEFAULT_AUDIT_CAPACITY,
    ) -> None:
        self.clock = clock or (lambda: 0.0)
        self.capacity = capacity
        self.entries: list[AuditEntry] = []
        self.dropped = 0
        # Explicit dedup keys already recorded: every replica of a
        # replicated observer (e.g. the Group Manager domain) executes the
        # same ordered decision against this one shared log, and only the
        # first report may land.
        self._dedup_seen: set = set()

    enabled = True

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def head(self) -> str:
        return self.entries[-1].digest if self.entries else GENESIS

    def record(
        self,
        kind: str,
        accused: str,
        reporter: str = "",
        hard: bool = False,
        detail: str = "",
        evidence: dict[str, Any] | None = None,
        dedup: Any = None,
    ) -> AuditEntry | None:
        """Append one entry; soft evidence is shed once the log is full."""
        if dedup is not None:
            if dedup in self._dedup_seen:
                return None
            self._dedup_seen.add(dedup)
        if not hard and len(self.entries) >= self.capacity:
            self.dropped += 1
            return None
        entry = AuditEntry(
            index=len(self.entries),
            time=self.clock(),
            kind=kind,
            accused=accused,
            reporter=reporter,
            hard=hard,
            detail=detail,
            evidence=_jsonify(evidence or {}),
            prev=self.head,
        )
        entry = AuditEntry(**{**entry.body(), "digest": _entry_digest(entry.body())})
        self.entries.append(entry)
        return entry

    # -- queries -------------------------------------------------------------

    def against(self, accused: str) -> list[AuditEntry]:
        return [e for e in self.entries if e.accused == accused]

    def hard_against(self, accused: str) -> list[AuditEntry]:
        return [e for e in self.entries if e.accused == accused and e.hard]

    def kinds(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for entry in self.entries:
            out[entry.kind] = out.get(entry.kind, 0) + 1
        return out

    # -- verification --------------------------------------------------------

    def verify(self) -> tuple[bool, str | None]:
        """Re-walk the hash chain; (True, None) or (False, what broke)."""
        return verify_chain(entry.as_dict() for entry in self.entries)

    def verify_signatures(
        self, verify: Callable[[str, bytes, bytes], bool]
    ) -> list[int]:
        """Re-check every signed ballot carried as evidence.

        ``verify(sender, plaintext, signature)`` is the keyring check.
        Returns the indices of entries whose evidence fails — for a log
        produced by a correct run, the list is empty.
        """
        bad: list[int] = []
        for entry in self.entries:
            for ballot in entry.evidence.get("ballots", []):
                try:
                    ok = verify(
                        ballot["sender"],
                        bytes.fromhex(ballot["plaintext"]),
                        bytes.fromhex(ballot["signature"]),
                    )
                except (KeyError, ValueError, TypeError):
                    ok = False
                if not ok:
                    bad.append(entry.index)
                    break
        return bad

    # -- export --------------------------------------------------------------

    def to_records(self) -> list[dict[str, Any]]:
        """JSONL-ready: one ``audit_entry`` per entry + one chain stat.

        An untouched log exports nothing, keeping evidence-free runs'
        JSONL streams identical to what they were before auditing existed.
        """
        if not self.entries and not self.dropped:
            return []
        out: list[dict[str, Any]] = []
        for entry in self.entries:
            record: dict[str, Any] = {"record": "audit_entry"}
            record.update(entry.as_dict())
            out.append(record)
        out.append(
            {
                "record": "audit_chain",
                "entries": len(self.entries),
                "hard": sum(1 for e in self.entries if e.hard),
                "dropped": self.dropped,
                "head": self.head,
            }
        )
        return out

    def render(self, limit: int = 12) -> str:
        if not self.entries:
            return "audit log: empty"
        lines = [f"audit log: {len(self.entries)} entr{'y' if len(self.entries) == 1 else 'ies'}, head {self.head[:16]}…"]
        shown = self.entries[-limit:]
        if len(shown) < len(self.entries):
            lines.append(f"  … {len(self.entries) - len(shown)} earlier entries elided")
        for entry in shown:
            strength = "HARD" if entry.hard else "soft"
            detail = f" {entry.detail}" if entry.detail else ""
            lines.append(
                f"  #{entry.index} t={entry.time * 1000:.3f}ms {strength} "
                f"{entry.kind} accused={entry.accused}{detail}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        self.entries.clear()
        self.dropped = 0
        self._dedup_seen.clear()


def verify_chain(records: Iterable[dict[str, Any]]) -> tuple[bool, str | None]:
    """Offline chain verification over exported ``audit_entry`` dicts.

    Works on a live log's ``as_dict`` stream and on records read back from a
    JSONL export alike — the digest covers the canonical JSON body, which
    round-trips exactly.
    """
    prev = GENESIS
    for position, record in enumerate(records):
        body = {k: v for k, v in record.items() if k not in ("digest", "record")}
        if body.get("index") != position:
            return False, f"entry {position}: index {body.get('index')!r} out of order"
        if body.get("prev") != prev:
            return False, f"entry {position}: chain broken (prev mismatch)"
        if _entry_digest(body) != record.get("digest"):
            return False, f"entry {position}: content does not match its digest"
        prev = record["digest"]
    return True, None


class NullAuditLog:
    """Do-nothing log behind a disabled Telemetry."""

    __slots__ = ()

    enabled = False
    entries: list = []
    dropped = 0
    head = GENESIS

    def __len__(self) -> int:
        return 0

    def record(self, *args: Any, **kwargs: Any) -> None:
        return None

    def against(self, accused: str) -> list:
        return []

    def hard_against(self, accused: str) -> list:
        return []

    def kinds(self) -> dict:
        return {}

    def verify(self) -> tuple[bool, None]:
        return True, None

    def verify_signatures(self, verify: Any) -> list:
        return []

    def to_records(self) -> list:
        return []

    def render(self, limit: int = 12) -> str:
        return "audit log disabled"

    def reset(self) -> None:
        pass


NULL_AUDIT = NullAuditLog()
