"""The Telemetry facade: one handle per simulation, wired through Network.

Instrumented code never imports concrete registries or tracers; it asks the
facade. When disabled (the default — benchmarks stay honest) every component
behind the facade is a shared null singleton and every helper bails on the
first ``enabled`` check, so the cost at each call site is one attribute load
and one branch.

Two propagation mechanisms, both safe because the simulator executes one
scheduled callback at a time in one Python process:

* ``current`` + :meth:`use` — a dynamically-scoped ambient span context.
  Code that fires async continuations re-establishes the context itself
  (the callback closes over the ctx and wraps its body in ``use``).
* :meth:`bind` / :meth:`lookup` — a bounded correlation map for hops where
  no closure survives, keyed by protocol identifiers that already cross
  the layer boundary (e.g. a ``ClientRequest`` content digest reappearing
  in a BFT pre-prepare). No wire format changes, ever.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Hashable, Iterator

from repro.obs.audit import NULL_AUDIT, AuditLog
from repro.obs.detect import NULL_DETECT, FaultEstimator
from repro.obs.health import NULL_HEALTH, HealthBoard
from repro.obs.registry import NULL_REGISTRY, MetricRegistry
from repro.obs.tracing import (
    DEFAULT_SPAN_CAPACITY,
    NULL_TRACER,
    Span,
    TraceContext,
    Tracer,
)

# The correlation map evicts its oldest binding past this size; protocol
# identifiers are unbound as soon as their hop completes, so a healthy run
# stays far below it.
DEFAULT_CORRELATION_CAP = 4096


class Telemetry:
    """Facade over registry + tracer + health board + propagation state."""

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] | None = None,
        span_capacity: int = DEFAULT_SPAN_CAPACITY,
        correlation_cap: int = DEFAULT_CORRELATION_CAP,
    ) -> None:
        self.enabled = enabled
        if enabled:
            self.registry = MetricRegistry()
            self.tracer = Tracer(clock=clock, capacity=span_capacity)
            self.health = HealthBoard()
            self.audit = AuditLog(clock=self.now)
            self.detect = FaultEstimator(
                self.registry, self.health, self.audit, clock=self.now
            )
        else:
            self.registry = NULL_REGISTRY  # type: ignore[assignment]
            self.tracer = NULL_TRACER  # type: ignore[assignment]
            self.health = NULL_HEALTH  # type: ignore[assignment]
            self.audit = NULL_AUDIT  # type: ignore[assignment]
            self.detect = NULL_DETECT  # type: ignore[assignment]
        self.current: TraceContext | None = None
        self.correlation_cap = correlation_cap
        self.correlation_dropped = 0
        self._correlation: OrderedDict[Hashable, TraceContext] = OrderedDict()

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self.tracer.bind_clock(clock)

    def now(self) -> float:
        return self.tracer.now() if self.enabled else 0.0

    def evidence(
        self,
        kind: str,
        accused: str,
        reporter: str = "",
        hard: bool = False,
        detail: str = "",
        evidence: dict[str, Any] | None = None,
        dedup: Any = None,
    ) -> None:
        """One intrusion-evidence observation: audit it, score it, roll it
        into the health board. The single entry point every protocol layer
        uses, so the three sinks can never drift apart. ``dedup`` suppresses
        replayed reports of one decision (each replica of a replicated
        observer executes it against this shared facade)."""
        if not self.enabled:
            return
        entry = self.audit.record(
            kind, accused, reporter=reporter, hard=hard, detail=detail,
            evidence=evidence, dedup=dedup,
        )
        if dedup is not None and entry is None:
            return
        self.health.record_evidence(
            accused, kind, hard=hard, time=self.now(), ctx=self.current
        )
        self.detect.note_evidence(kind, accused, hard)

    def reset(self) -> None:
        """Clear accumulated state so one facade can serve sequential runs."""
        if not self.enabled:
            return
        self.registry.reset()
        self.tracer.clear()
        self.health.reset()
        self.audit.reset()
        self.detect.reset()
        # The estimator cached family handles from the registry; rebuild it
        # so its gauges land in the freshly reset namespace.
        self.detect = FaultEstimator(
            self.registry, self.health, self.audit, clock=self.now
        )
        self.current = None
        self._correlation.clear()
        self.correlation_dropped = 0

    # -- ambient context -----------------------------------------------------

    @contextmanager
    def use(self, ctx: TraceContext | None) -> Iterator[None]:
        """Make ``ctx`` the ambient parent for the enclosed synchronous work."""
        previous = self.current
        self.current = ctx
        try:
            yield
        finally:
            self.current = previous

    # -- correlation map -----------------------------------------------------

    def bind(self, key: Hashable, ctx: TraceContext | None) -> None:
        """Remember ``ctx`` under a protocol identifier for a later hop."""
        if not self.enabled or ctx is None:
            return
        if key in self._correlation:
            self._correlation.move_to_end(key)
        elif len(self._correlation) >= self.correlation_cap:
            self._correlation.popitem(last=False)
            self.correlation_dropped += 1
        self._correlation[key] = ctx

    def lookup(self, key: Hashable) -> TraceContext | None:
        return self._correlation.get(key)

    def unbind(self, key: Hashable) -> None:
        self._correlation.pop(key, None)

    # -- span helpers (each bails immediately when disabled) -----------------

    def begin(
        self,
        name: str,
        parent: TraceContext | None = None,
        pid: str = "",
        **attrs: Any,
    ) -> Span | None:
        if not self.enabled:
            return None
        return self.tracer.begin(name, parent=parent, pid=pid, **attrs)

    def end(self, span: Span | None, end: float | None = None) -> None:
        if self.enabled:
            self.tracer.end(span, end=end)

    def point(
        self,
        name: str,
        parent: TraceContext | None = None,
        pid: str = "",
        **attrs: Any,
    ) -> Span | None:
        if not self.enabled:
            return None
        return self.tracer.point(name, parent=parent, pid=pid, **attrs)

    def record(
        self,
        name: str,
        start: float,
        end: float | None = None,
        parent: TraceContext | None = None,
        pid: str = "",
        **attrs: Any,
    ) -> Span | None:
        if not self.enabled:
            return None
        return self.tracer.record(
            name, start, end=end, parent=parent, pid=pid, **attrs
        )


#: The shared disabled facade — the default everywhere telemetry is optional.
NOOP_TELEMETRY = Telemetry(enabled=False)
