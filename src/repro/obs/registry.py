"""The telemetry metric registry: labeled counters, gauges, histograms.

Every instrument lives in a :class:`MetricRegistry` under a unique name.
Families carry a fixed tuple of label names; ``.labels(...)`` returns the
child bound to one label-value combination (created on first use, cached
thereafter). A family declared with no labels acts as its own single child,
so ``registry.counter("x").inc()`` just works.

Disabled mode: :data:`NULL_REGISTRY` hands back the shared
:data:`NULL_METRIC` singleton for every request — no families, no children,
no samples are ever allocated, and every mutator is a bare ``pass``. That is
what keeps benchmarks honest when telemetry is off.
"""

from __future__ import annotations

import zlib
from typing import Any, Iterator


def summarize(samples: list[float]) -> dict[str, float]:
    # Imported lazily: repro.metrics pulls in collectors -> sim.network,
    # which itself imports repro.obs at module load.
    from repro.metrics.stats import summarize as _summarize

    return _summarize(samples)

# A family refuses to mint children beyond this many distinct label
# combinations; excess traffic lands on one shared overflow child so a
# label-cardinality bug degrades a metric instead of eating the heap.
DEFAULT_MAX_CHILDREN = 256

# Histograms keep raw samples up to this cap for percentile summaries;
# count/sum/min/max stay exact beyond it. Past the cap, samples are kept
# via reservoir sampling so percentiles reflect the whole run, not just
# startup behavior.
DEFAULT_SAMPLE_CAP = 10_000

_OVERFLOW_LABEL = "__overflow__"

# Knuth MMIX LCG constants for the histogram's private sampling stream —
# deterministic per (metric, labels) and independent of the `random`
# module's ambient state, which simulations own.
_LCG_MUL = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("labels_kv", "value")

    kind = "counter"

    def __init__(self, labels_kv: dict[str, str]) -> None:
        self.labels_kv = labels_kv
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A value that can move in either direction."""

    __slots__ = ("labels_kv", "value")

    kind = "gauge"

    def __init__(self, labels_kv: dict[str, str]) -> None:
        self.labels_kv = labels_kv
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """Observations over simulated time (durations, sizes, counts)."""

    __slots__ = ("labels_kv", "count", "sum", "min", "max", "samples", "sample_cap", "sample_drops", "_rng")

    kind = "histogram"

    def __init__(self, labels_kv: dict[str, str], sample_cap: int = DEFAULT_SAMPLE_CAP) -> None:
        self.labels_kv = labels_kv
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.samples: list[float] = []
        self.sample_cap = sample_cap
        self.sample_drops = 0
        # Sampling stream seeded from the label identity: same instrument,
        # same observation sequence -> same reservoir, every run.
        seed_material = ",".join(f"{k}={v}" for k, v in sorted(labels_kv.items()))
        self._rng = (zlib.crc32(seed_material.encode("utf-8")) | 1) & _LCG_MASK

    def _next_rand(self) -> int:
        self._rng = (self._rng * _LCG_MUL + _LCG_INC) & _LCG_MASK
        return self._rng >> 16

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.samples) < self.sample_cap:
            self.samples.append(value)
        else:
            # Reservoir sampling (Algorithm R): each of the `count`
            # observations so far stays retained with probability
            # cap/count, so percentile summaries cover the whole run
            # instead of freezing on the first `cap` observations.
            slot = self._next_rand() % self.count
            if slot < self.sample_cap:
                self.samples[slot] = value
            else:
                self.sample_drops += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """count/mean/percentiles; exact count even past the sample cap."""
        out = summarize(self.samples)
        out["count"] = float(self.count)
        out["mean"] = self.mean
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        return out

    def snapshot(self) -> dict[str, Any]:
        return self.summary()


_FACTORIES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children of one named metric across its label combinations."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        max_children: int = DEFAULT_MAX_CHILDREN,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.max_children = max_children
        self._children: dict[tuple[str, ...], Any] = {}
        self._overflow: Any = None
        self.overflowed = 0
        self._factory = _FACTORIES[kind]
        self._default = None if self.labelnames else self._make(())

    def _make(self, values: tuple[str, ...]) -> Any:
        child = self._factory(dict(zip(self.labelnames, values)))
        self._children[values] = child
        return child

    def labels(self, **kv: Any) -> Any:
        """The child bound to one label-value combination."""
        if tuple(sorted(kv)) != tuple(sorted(self.labelnames)):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, got {tuple(kv)}"
            )
        values = tuple(str(kv[name]) for name in self.labelnames)
        child = self._children.get(values)
        if child is not None:
            return child
        if len(self._children) >= self.max_children:
            # Cardinality blowout: aggregate the tail into one child.
            self.overflowed += 1
            if self._overflow is None:
                self._overflow = self._factory(
                    {name: _OVERFLOW_LABEL for name in self.labelnames}
                )
            return self._overflow
        return self._make(values)

    def children(self) -> Iterator[Any]:
        yield from self._children.values()
        if self._overflow is not None:
            yield self._overflow

    # -- label-less convenience: the family is its own single child ---------

    def _require_default(self) -> Any:
        if self._default is None:
            raise ValueError(
                f"metric {self.name!r} has labels {self.labelnames}; call .labels() first"
            )
        return self._default

    def inc(self, amount: float = 1.0) -> None:
        self._require_default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._require_default().dec(amount)

    def set(self, value: float) -> None:
        self._require_default().set(value)

    def observe(self, value: float) -> None:
        self._require_default().observe(value)

    @property
    def value(self) -> float:
        return self._require_default().value


class MetricRegistry:
    """Namespace of metric families; the one place exporters read from."""

    enabled = True

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        # Labels stamped onto every collected entry — deployment identity
        # (e.g. which shard domain a node belongs to) rather than a
        # per-instrument dimension. Instrument-declared labels win on
        # collision, so constant labels can never corrupt a family.
        self.constant_labels: dict[str, str] = {}

    def _get(
        self, name: str, kind: str, help: str, labels: tuple[str, ...]
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help=help, labelnames=labels)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {family.kind}, not a {kind}"
            )
        if labels and family.labelnames != tuple(labels):
            raise ValueError(
                f"metric {name!r} already registered with labels {family.labelnames}"
            )
        return family

    def counter(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> MetricFamily:
        return self._get(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> MetricFamily:
        return self._get(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> MetricFamily:
        return self._get(name, "histogram", help, labels)

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def families(self) -> list[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def reset(self) -> None:
        """Drop every family so back-to-back runs don't bleed together.

        Callers that cached child handles must re-request them after a
        reset — the registry hands out fresh families, so stale handles
        would mutate orphaned instruments nobody collects.
        """
        self._families.clear()

    def collect(self) -> list[dict[str, Any]]:
        """Flat snapshot: one dict per (family, label combination)."""
        out = []
        for family in self.families():
            for child in family.children():
                labels = dict(self.constant_labels)
                labels.update(child.labels_kv)
                entry: dict[str, Any] = {
                    "metric": family.name,
                    "kind": family.kind,
                    "labels": labels,
                }
                entry.update(child.snapshot())
                out.append(entry)
        return out


class NullMetric:
    """Shared do-nothing stand-in for every instrument when disabled."""

    __slots__ = ()

    kind = "null"
    value = 0.0
    count = 0

    def labels(self, **kv: Any) -> "NullMetric":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def summary(self) -> dict[str, float]:
        return summarize([])


class NullRegistry:
    """Registry stand-in: every request returns the one NULL_METRIC."""

    __slots__ = ()

    enabled = False

    def counter(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> NullMetric:
        return NULL_METRIC

    def gauge(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> NullMetric:
        return NULL_METRIC

    def histogram(self, name: str, help: str = "", labels: tuple[str, ...] = ()) -> NullMetric:
        return NULL_METRIC

    def get(self, name: str) -> None:
        return None

    def families(self) -> list:
        return []

    def collect(self) -> list:
        return []

    def reset(self) -> None:
        pass


NULL_METRIC = NullMetric()
NULL_REGISTRY = NullRegistry()
