"""Streaming fault estimation: per-element suspicion from protocol signals.

The paper's intrusion-tolerance loop is detect → expel → replace, and the
follow-on control work (Hammar & Stadler, PAPERS.md) needs the detect side
to be *continuous*: a per-element belief about compromise, not a binary
tripwire. The :class:`FaultEstimator` is that sensor. It folds four signal
families into one suspicion score per element:

* **evidence** — entries noted in the :mod:`repro.obs.audit` log. Hard
  evidence (attributable misbehavior) pins the score to 1.0 immediately;
  soft evidence only raises the statistical component.
* **garbage rate** — replies or shares that failed decryption, signature
  verification, or unmarshalling, attributed to their claimed sender.
* **timeliness** — a phi-accrual estimator (Hayashibara et al.) over
  message inter-arrival per element. We score *relative* phi (each
  element's phi minus the minimum across its peers) so a globally quiet
  network does not make everyone look crashed.
* **latency anomalies** — per-phase EWMA mean/variance of protocol phase
  durations with z-score flagging, plus retransmission pressure.

Soft components combine as ``SOFT_CAP * (1 - prod(1 - c_i))`` — independent
weak signals compound, but the sum is capped strictly below
``ACCUSE_THRESHOLD``. Only hard evidence can push an element into the
*accused* band, which is what makes "zero false accusations of honest
elements" a structural property rather than a tuning accident: the chaos
adversary can garble an honest element's ciphertext, signature, and payload
bytes, and all of that lands in soft components.
"""

from __future__ import annotations

import math
from typing import Any, Callable

#: Ceiling for the combined soft (statistical) component. Strictly below
#: ACCUSE_THRESHOLD: statistics alone can make an element *suspected*,
#: never *accused*.
SOFT_CAP = 0.75

#: Score at or above which an element is formally accused. Reachable only
#: through hard evidence.
ACCUSE_THRESHOLD = 0.9

#: Score at or above which an element is reported as suspected.
REPORT_THRESHOLD = 0.30

#: Relative phi value that saturates the timeliness component.
PHI_SCALE = 8.0

#: z-score magnitude that flags a phase duration as anomalous.
ANOMALY_Z = 3.5

#: Observations an EWMA needs before its z-scores are trusted.
EWMA_WARMUP = 12

_LN10 = math.log(10.0)


class Ewma:
    """Exponentially weighted mean/variance with z-scoring."""

    __slots__ = ("alpha", "mean", "var", "count")

    def __init__(self, alpha: float = 0.1) -> None:
        self.alpha = alpha
        self.mean = 0.0
        self.var = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.count += 1
        if self.count == 1:
            self.mean = value
            self.var = 0.0
            return
        delta = value - self.mean
        self.mean += self.alpha * delta
        # West's incremental EWMA variance: decay toward the new squared
        # deviation so shifts in spread are tracked, not just in level.
        self.var = (1.0 - self.alpha) * (self.var + self.alpha * delta * delta)

    @property
    def std(self) -> float:
        return math.sqrt(self.var) if self.var > 0.0 else 0.0

    def zscore(self, value: float) -> float:
        if self.count < 2 or self.std == 0.0:
            return 0.0
        return (value - self.mean) / self.std


class PhiAccrual:
    """Phi-accrual timeliness suspicion from message inter-arrival times.

    Under an exponential inter-arrival model phi(t) = elapsed / (mean * ln10):
    phi = 1 means the silence is 10x less likely than typical, phi = 2
    means 100x, and so on.
    """

    __slots__ = ("intervals", "last")

    def __init__(self, alpha: float = 0.125) -> None:
        self.intervals = Ewma(alpha=alpha)
        self.last: float | None = None

    def observe(self, now: float) -> None:
        if self.last is not None and now >= self.last:
            self.intervals.observe(now - self.last)
        self.last = now

    def phi(self, now: float) -> float:
        if self.last is None or self.intervals.count < 2:
            return 0.0
        mean = self.intervals.mean
        if mean <= 0.0:
            return 0.0
        elapsed = max(0.0, now - self.last)
        return elapsed / (mean * _LN10)


class _ElementState:
    """Accumulated signals for one element."""

    __slots__ = (
        "hard",
        "soft",
        "garbage",
        "auth_rejects",
        "anomalies",
        "retransmissions",
        "arrivals",
        "kinds",
    )

    def __init__(self) -> None:
        self.hard = 0
        self.soft = 0
        self.garbage = 0
        self.auth_rejects = 0
        self.anomalies = 0
        self.retransmissions = 0
        self.arrivals = PhiAccrual()
        self.kinds: dict[str, int] = {}


class FaultEstimator:
    """Online per-element suspicion scores over the telemetry stack."""

    def __init__(
        self,
        registry: Any,
        health: Any,
        audit: Any,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.registry = registry
        self.health = health
        self.audit = audit
        self.clock = clock or (lambda: 0.0)
        self._elements: dict[str, _ElementState] = {}
        # Global per-phase duration baselines; anomalies are charged to the
        # element whose phase run deviated from the population.
        self._phases: dict[str, Ewma] = {}
        self.first_suspected: dict[str, float] = {}
        self.first_accused: dict[str, float] = {}
        self._g_suspicion = registry.gauge(
            "element_suspicion",
            "current per-element suspicion score (0..1)",
            labels=("element",),
        )
        self._c_signals = registry.counter(
            "detect_signals_total",
            "raw detector signals by element and signal kind",
            labels=("element", "signal"),
        )

    enabled = True

    # -- internals -----------------------------------------------------------

    def _state(self, pid: str) -> _ElementState:
        state = self._elements.get(pid)
        if state is None:
            state = _ElementState()
            self._elements[pid] = state
        return state

    def _signal(self, pid: str, signal: str) -> None:
        self._c_signals.labels(element=pid, signal=signal).inc()

    def _refresh(self, pid: str, now: float | None = None) -> float:
        """Recompute one element's score; publish gauge + health board."""
        now = self.clock() if now is None else now
        score = self.suspicion(pid, now)
        self._g_suspicion.labels(element=pid).set(score)
        self.health.record_suspicion(pid, score)
        if score >= REPORT_THRESHOLD:
            self.first_suspected.setdefault(pid, now)
        if score >= ACCUSE_THRESHOLD:
            self.first_accused.setdefault(pid, now)
        return score

    # -- signal intake -------------------------------------------------------

    def note_evidence(self, kind: str, accused: str, hard: bool) -> None:
        """An audit-log entry was recorded against ``accused``."""
        state = self._state(accused)
        if hard:
            state.hard += 1
        else:
            state.soft += 1
        state.kinds[kind] = state.kinds.get(kind, 0) + 1
        self._signal(accused, "evidence-hard" if hard else "evidence-soft")
        self._refresh(accused)

    def observe_arrival(self, src: str, now: float) -> None:
        """A message from ``src`` was delivered at simulated time ``now``."""
        self._state(src).arrivals.observe(now)

    def observe_phase(self, pid: str, phase: str, duration: float) -> None:
        """``pid`` completed a protocol phase (prepare/commit/...) taking
        ``duration``; flags it against the population baseline."""
        baseline = self._phases.get(phase)
        if baseline is None:
            baseline = self._phases[phase] = Ewma(alpha=0.05)
        if (
            baseline.count >= EWMA_WARMUP
            and abs(baseline.zscore(duration)) >= ANOMALY_Z
        ):
            self._state(pid).anomalies += 1
            self._signal(pid, f"latency-anomaly-{phase}")
            self._refresh(pid)
        baseline.observe(duration)

    def observe_garbage(self, pid: str, reason: str) -> None:
        """A message claiming to be from ``pid`` failed decryption,
        signature verification, or unmarshalling."""
        self._state(pid).garbage += 1
        self._signal(pid, f"garbage-{reason}")
        self._refresh(pid)

    def observe_auth_reject(self, pid: str, reason: str) -> None:
        """A point-to-point MAC/signature check rejected a message from
        ``pid``."""
        self._state(pid).auth_rejects += 1
        self._signal(pid, f"auth-{reason}")
        self._refresh(pid)

    def observe_retransmission(self, pid: str) -> None:
        """A voter timed out waiting on ``pid``'s domain and retried."""
        self._state(pid).retransmissions += 1
        self._signal(pid, "retransmission")
        self._refresh(pid)

    # -- scoring -------------------------------------------------------------

    def _relative_phi(self, pid: str, now: float) -> float:
        state = self._elements.get(pid)
        if state is None:
            return 0.0
        phis = {
            peer: s.arrivals.phi(now)
            for peer, s in self._elements.items()
            if s.arrivals.intervals.count >= 2
        }
        if pid not in phis or len(phis) < 2:
            return 0.0
        return phis[pid] - min(phis.values())

    def components(self, pid: str, now: float | None = None) -> dict[str, float]:
        """The individual soft signal components, each in [0, 1)."""
        now = self.clock() if now is None else now
        state = self._elements.get(pid)
        if state is None:
            return {}
        return {
            "garbage": 1.0 - math.exp(-state.garbage / 2.0),
            "evidence": 1.0 - math.exp(-state.soft / 2.0),
            "auth": 1.0 - math.exp(-state.auth_rejects / 4.0),
            "timeliness": min(1.0, max(0.0, self._relative_phi(pid, now)) / PHI_SCALE),
            "anomaly": 1.0 - math.exp(-state.anomalies / 4.0),
            "retransmission": 1.0 - math.exp(-state.retransmissions / 6.0),
        }

    def suspicion(self, pid: str, now: float | None = None) -> float:
        """The element's score: 1.0 on hard evidence, else capped soft."""
        state = self._elements.get(pid)
        if state is None:
            return 0.0
        if state.hard > 0:
            return 1.0
        miss = 1.0
        for component in self.components(pid, now).values():
            miss *= 1.0 - component
        return SOFT_CAP * (1.0 - miss)

    def scores(self, now: float | None = None) -> dict[str, float]:
        now = self.clock() if now is None else now
        return {pid: self.suspicion(pid, now) for pid in sorted(self._elements)}

    def accused(self, now: float | None = None) -> list[str]:
        scores = self.scores(now)
        return [pid for pid, s in scores.items() if s >= ACCUSE_THRESHOLD]

    def suspected(self, now: float | None = None) -> list[str]:
        scores = self.scores(now)
        return [pid for pid, s in scores.items() if s >= REPORT_THRESHOLD]

    def evidence_kinds(self, pid: str) -> dict[str, int]:
        state = self._elements.get(pid)
        return dict(state.kinds) if state else {}

    def snapshot(self, now: float | None = None) -> dict[str, Any]:
        """Refresh every gauge (timeliness moves with the clock) and return
        the full detector state for export/reporting."""
        now = self.clock() if now is None else now
        for pid in sorted(self._elements):
            self._refresh(pid, now)
        return {
            "scores": self.scores(now),
            "accused": self.accused(now),
            "suspected": self.suspected(now),
            "first_suspected": dict(self.first_suspected),
            "first_accused": dict(self.first_accused),
        }

    def to_records(self, now: float | None = None) -> list[dict[str, Any]]:
        now = self.clock() if now is None else now
        out: list[dict[str, Any]] = []
        for pid in sorted(self._elements):
            out.append(
                {
                    "record": "suspicion",
                    "element": pid,
                    "score": self.suspicion(pid, now),
                    "components": self.components(pid, now),
                    "evidence_kinds": self.evidence_kinds(pid),
                    "first_suspected": self.first_suspected.get(pid),
                    "first_accused": self.first_accused.get(pid),
                }
            )
        return out

    def reset(self) -> None:
        self._elements.clear()
        self._phases.clear()
        self.first_suspected.clear()
        self.first_accused.clear()


class NullFaultEstimator:
    """Do-nothing estimator behind a disabled Telemetry."""

    __slots__ = ()

    enabled = False
    first_suspected: dict = {}
    first_accused: dict = {}

    def note_evidence(self, kind: str, accused: str, hard: bool) -> None:
        pass

    def observe_arrival(self, src: str, now: float) -> None:
        pass

    def observe_phase(self, pid: str, phase: str, duration: float) -> None:
        pass

    def observe_garbage(self, pid: str, reason: str) -> None:
        pass

    def observe_auth_reject(self, pid: str, reason: str) -> None:
        pass

    def observe_retransmission(self, pid: str) -> None:
        pass

    def components(self, pid: str, now: float | None = None) -> dict:
        return {}

    def suspicion(self, pid: str, now: float | None = None) -> float:
        return 0.0

    def scores(self, now: float | None = None) -> dict:
        return {}

    def accused(self, now: float | None = None) -> list:
        return []

    def suspected(self, now: float | None = None) -> list:
        return []

    def evidence_kinds(self, pid: str) -> dict:
        return {}

    def snapshot(self, now: float | None = None) -> dict[str, Any]:
        return {
            "scores": {},
            "accused": [],
            "suspected": [],
            "first_suspected": {},
            "first_accused": {},
        }

    def to_records(self, now: float | None = None) -> list:
        return []

    def reset(self) -> None:
        pass


NULL_DETECT = NullFaultEstimator()
