"""repro.obs — telemetry registry, causal tracing, and health reporting.

The public surface:

* :class:`Telemetry` / :data:`NOOP_TELEMETRY` — the per-simulation facade
  (enable via ``Network.enable_telemetry()`` or ``ItdosSystem(telemetry=True)``)
* :class:`MetricRegistry` — labeled counters/gauges/histograms
* :class:`Tracer` / :class:`Span` / :class:`TraceContext` — span trees
* :class:`HealthBoard` — per-element dissent/view-change/expulsion rollup
* :mod:`repro.obs.export` — JSONL + table exporters
"""

from repro.obs.export import (
    metric_records,
    read_jsonl,
    render_metrics_table,
    span_records,
    telemetry_records,
    to_jsonl,
    write_jsonl,
)
from repro.obs.health import NULL_HEALTH, ElementHealth, HealthBoard, HealthEvent
from repro.obs.registry import (
    NULL_METRIC,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricRegistry,
)
from repro.obs.telemetry import NOOP_TELEMETRY, Telemetry
from repro.obs.tracing import NULL_TRACER, Span, TraceContext, Tracer

__all__ = [
    "Counter",
    "ElementHealth",
    "Gauge",
    "HealthBoard",
    "HealthEvent",
    "Histogram",
    "MetricFamily",
    "MetricRegistry",
    "NOOP_TELEMETRY",
    "NULL_HEALTH",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "Span",
    "Telemetry",
    "TraceContext",
    "Tracer",
    "metric_records",
    "read_jsonl",
    "render_metrics_table",
    "span_records",
    "telemetry_records",
    "to_jsonl",
    "write_jsonl",
]
