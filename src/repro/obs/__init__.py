"""repro.obs — telemetry registry, causal tracing, and health reporting.

The public surface:

* :class:`Telemetry` / :data:`NOOP_TELEMETRY` — the per-simulation facade
  (enable via ``Network.enable_telemetry()`` or ``ItdosSystem(telemetry=True)``)
* :class:`MetricRegistry` — labeled counters/gauges/histograms
* :class:`Tracer` / :class:`Span` / :class:`TraceContext` — span trees
* :class:`HealthBoard` — per-element dissent/view-change/expulsion rollup
  with suspicion scores and evidence counts
* :class:`AuditLog` — tamper-evident, hash-chained intrusion-evidence log
  (:func:`verify_chain` re-checks an exported chain offline)
* :class:`FaultEstimator` — streaming per-element suspicion scores
  (phi-accrual timeliness, latency anomaly, garbage/dissent rates)
* :mod:`repro.obs.export` — JSONL + table exporters
"""

from repro.obs.audit import (
    NULL_AUDIT,
    AuditEntry,
    AuditLog,
    verify_chain,
)
from repro.obs.detect import (
    ACCUSE_THRESHOLD,
    NULL_DETECT,
    REPORT_THRESHOLD,
    Ewma,
    FaultEstimator,
    PhiAccrual,
)
from repro.obs.export import (
    FoldedMetrics,
    aggregate_by_shard,
    audit_records,
    detect_records,
    fold_metric_records,
    fold_node_records,
    metric_records,
    node_telemetry_files,
    read_jsonl,
    read_node_records,
    render_metrics_table,
    span_records,
    telemetry_records,
    to_jsonl,
    tracer_from_records,
    write_jsonl,
)
from repro.obs.health import NULL_HEALTH, ElementHealth, HealthBoard, HealthEvent
from repro.obs.registry import (
    NULL_METRIC,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricRegistry,
)
from repro.obs.telemetry import NOOP_TELEMETRY, Telemetry
from repro.obs.tracing import NULL_TRACER, Span, TraceContext, Tracer

__all__ = [
    "ACCUSE_THRESHOLD",
    "AuditEntry",
    "AuditLog",
    "Counter",
    "ElementHealth",
    "Ewma",
    "FaultEstimator",
    "FoldedMetrics",
    "Gauge",
    "HealthBoard",
    "HealthEvent",
    "Histogram",
    "MetricFamily",
    "MetricRegistry",
    "NOOP_TELEMETRY",
    "NULL_AUDIT",
    "NULL_DETECT",
    "NULL_HEALTH",
    "NULL_METRIC",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "PhiAccrual",
    "REPORT_THRESHOLD",
    "Span",
    "Telemetry",
    "TraceContext",
    "Tracer",
    "aggregate_by_shard",
    "audit_records",
    "detect_records",
    "fold_metric_records",
    "fold_node_records",
    "metric_records",
    "node_telemetry_files",
    "read_jsonl",
    "read_node_records",
    "render_metrics_table",
    "span_records",
    "telemetry_records",
    "to_jsonl",
    "tracer_from_records",
    "verify_chain",
    "write_jsonl",
]
