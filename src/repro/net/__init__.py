"""repro.net — the real-network execution backend.

Everything above this package (GIOP, SMIOP, PBFT, voting, the Group
Manager, recovery) runs unchanged over two interchangeable transports:

* :class:`~repro.net.transport.SimTransport` — the discrete-event
  simulator's delivery path (deterministic; the chaos/invariant oracle);
* :class:`~repro.net.tcp.AsyncioTransport` — real OS processes talking
  length-prefixed frames over TCP via asyncio (`python -m repro serve`).

The package layers bottom-up:

``framing``    length-prefixed frame codec (split/coalesced-read safe,
               oversize rejection)
``wire``       payload-object ↔ canonical-bytes codec shared by both
               backends (the byte-identity contract)
``transport``  the Transport seam + the simulator implementation
``faults``     per-link drop/delay/partition injection for the wire
               backend, mirroring the chaos adversary's knobs
``clock``      wall-clock scheduler presenting the simulator's timer API
``world``      Network-compatible facade hosting one element per process
``tcp``        the asyncio TCP transport (reconnect, backpressure)
``config``     topology files and deterministic cluster construction
``node``       the per-process element harness behind ``repro serve``
``launcher``   subprocess cluster launcher used by tests, CI, and bench
"""

from repro.net.clock import RealTimeScheduler
from repro.net.config import TopologyConfig, TopologyError
from repro.net.faults import LinkFault, NetFaultInjector
from repro.net.framing import FrameDecoder, FrameError, encode_frame
from repro.net.transport import SimTransport, Transport
from repro.net.wire import (
    WireCodecError,
    assert_wire_encodable,
    decode_wire_payload,
    encode_wire_payload,
)
from repro.net.world import NetWorld

__all__ = [
    "FrameDecoder",
    "FrameError",
    "encode_frame",
    "LinkFault",
    "NetFaultInjector",
    "NetWorld",
    "RealTimeScheduler",
    "SimTransport",
    "TopologyConfig",
    "TopologyError",
    "Transport",
    "WireCodecError",
    "assert_wire_encodable",
    "decode_wire_payload",
    "encode_wire_payload",
]
