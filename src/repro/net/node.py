"""The per-process node harness: one OS process, one ITDOS element.

``python -m repro serve --config topology.toml --node calc-e1`` boots one
element of a real cluster:

1. build the full deterministic :class:`ItdosSystem` from the topology's
   seed (every process derives byte-identical key material this way — the
   bootstrap doubles as the out-of-band PKI ceremony, §2.2);
2. lift this node's own element out of the simulated world onto a
   :class:`~repro.net.world.NetWorld` backed by a real
   :class:`~repro.net.tcp.AsyncioTransport`;
3. wait for links to every server peer (the cluster barrier), then play
   the role: GM elements kick the coin-toss bootstrap, rejoining replicas
   petition for readmission + queue state transfer, clients drive the
   workload through :meth:`ItdosClient.async_invoke`;
4. on SIGTERM/SIGINT (or workload completion), shut down cleanly: SMIOP
   send queues drained, retransmission timers cancelled, wall-clock timers
   cancelled, TCP links closed, telemetry exported as JSONL.

The harness leaves breadcrumbs in ``--out``: ``<node>.ready`` once the
barrier passes, ``<node>.result.json`` for clients, ``<node>.stats.json``
always, ``<node>.telemetry.jsonl`` when telemetry is on. The cluster
launcher (:mod:`repro.net.launcher`) and the CI smoke gate key off these.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import time
from typing import Any

from repro.net.clock import RealTimeScheduler
from repro.net.config import TopologyConfig
from repro.net.faults import NetFaultInjector
from repro.net.tcp import AsyncioTransport
from repro.net.world import NetWorld

#: Exit codes: 0 clean, 1 workload/recovery failure, 2 bad usage.
EXIT_OK = 0
EXIT_FAILED = 1
EXIT_USAGE = 2


def _write_json(path: str, payload: dict) -> None:
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    os.replace(tmp, path)  # atomic: watchers never see a partial file


def _touch(path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(str(os.getpid()))


class NodeHarness:
    """Everything one OS process needs to host one element."""

    def __init__(
        self,
        config: TopologyConfig,
        node_id: str,
        out_dir: str,
        rejoin: bool = False,
    ) -> None:
        self.config = config
        self.node_id = node_id
        self.out_dir = out_dir
        self.rejoin = rejoin
        self.role = config.role_of(node_id)
        self.system: Any = None
        self.element: Any = None
        self.world: NetWorld | None = None
        self.transport: AsyncioTransport | None = None
        self.scheduler: RealTimeScheduler | None = None
        self.stop_event: asyncio.Event | None = None
        self.rejoin_outcome: bool | None = None
        self.workload_report: dict | None = None
        self._rejoin_task: asyncio.Future | None = None

    # -- wiring --------------------------------------------------------------

    def _build(self, loop: asyncio.AbstractEventLoop) -> None:
        config = self.config
        self.system = config.build_system()
        if self.role == "client":
            self.element = self.system.clients[self.node_id]
        elif self.role == "gm":
            self.element = next(
                gm for gm in self.system.gm_elements if gm.pid == self.node_id
            )
        else:
            self.element = self.system.elements[self.node_id]
        self.scheduler = RealTimeScheduler(loop)
        faults = (
            NetFaultInjector.from_config(config.faults, seed=config.seed)
            if config.faults
            else None
        )
        world = NetWorld(
            self.scheduler,
            transport=None,  # type: ignore[arg-type] - bound just below
            groups=config.groups(),
            telemetry=config.telemetry,
        )
        self.transport = AsyncioTransport(
            self.node_id,
            config.address_book(),
            loop,
            world.deliver,
            faults=faults,
            max_frame_bytes=config.max_frame_bytes,
            queue_limit=config.queue_limit,
        )
        world.transport = self.transport
        self.world = world
        world.host(self.element)
        # The bootstrap bound the ORB to the (inert) sim world's telemetry;
        # rebind to this node's live facade so spans ride the wall clock.
        orb = getattr(self.element, "orb", None)
        if orb is not None:
            orb.telemetry = world.telemetry
        # Stamp every metric this process reports with its shard identity
        # so `repro metrics --from-node` can aggregate per shard (E20).
        if world.telemetry.enabled:
            world.telemetry.registry.constant_labels = {
                "shard": self.shard_label()
            }
        # Every OS process is a fresh incarnation of its pid: seed BFT
        # client timestamps and SMIOP request ids from the local clock so
        # they stay monotonic across restarts. A reused timestamp hits the
        # replicas' client-table dedup; a reused request id on a GM-reused
        # connection is discarded below the §3.6 high-water mark (and would
        # repeat an AEAD traffic nonce under the reissued key).
        endpoint = getattr(self.element, "endpoint", None)
        if endpoint is not None and hasattr(endpoint, "timestamp_base"):
            incarnation = int(time.time() * 1000)
            endpoint.timestamp_base = incarnation
            endpoint.request_id_base = incarnation

    def home_domain(self) -> str:
        """The replication domain this node belongs to (replicas/readers)."""
        for domain_id in self.config.domain_ids:
            if self.node_id in self.config.element_ids_of(domain_id):
                return domain_id
        return self.config.domain

    def shard_label(self) -> str:
        """Metric label value: the node's shard domain, or its role."""
        if self.role in ("replica", "read-only"):
            return self.home_domain()
        return self.role  # "gm" / "client"

    # -- roles ---------------------------------------------------------------

    async def _start_role(self) -> None:
        if self.role == "gm":
            self.element.start()
        elif self.role == "read-only" and self.rejoin:
            # A reader's whole state is derived from the committed stream,
            # so a restarted reader just re-adopts it from the core tier —
            # no GM petition, no membership change.
            self.element.resync()
        elif self.role == "replica" and self.rejoin:
            # Background: readmission takes several protocol round trips
            # (petition through GM ordering, then transfer windows) and must
            # not make the node deaf to SIGTERM meanwhile.
            self._rejoin_task = asyncio.ensure_future(self._recover_membership())

    async def _recover_membership(self) -> None:
        """Crash-restart path: petition the GM back in and adopt the queue."""
        loop = asyncio.get_running_loop()
        done: asyncio.Future[bool] = loop.create_future()
        self.element.repaired = True
        self.element.recover_membership(
            fresh_keys=True,
            on_complete=lambda ok: None if done.done() else done.set_result(ok),
        )
        try:
            self.rejoin_outcome = await asyncio.wait_for(done, timeout=120.0)
        except asyncio.TimeoutError:
            self.rejoin_outcome = False
        # Checkpoint the stats file so launchers can observe the verdict
        # without tearing the node down.
        self._export()

    def _request_plan(self, index: int, written: int) -> tuple[str, tuple, Any]:
        """The index-th request of the mixed read/write client workload.

        Deterministic interleave: request ``index`` is a read iff the
        rounded cumulative read budget ``read_fraction * (index+1)``
        crosses an integer — so a 0.9 fraction yields exactly the 90/10
        pattern every node and every run agrees on.
        """
        fraction = self.config.read_fraction
        is_read = int(fraction * (index + 1)) > int(fraction * index)
        if self.config.workload == "kv":
            if is_read:
                key = f"k{written - 1}" if written else "k-none"
                return "get", (key,), (f"v{written - 1}" if written else "")
            return "put", (f"k{written}", f"v{written}"), None
        if is_read:
            return "mean", ([float(index), 1000.0],), (float(index) + 1000.0) / 2.0
        return "add", (float(index), 1000.0), float(index) + 1000.0

    async def _run_workload(self) -> dict:
        """The client driver: mixed read/write requests over the real wire.

        Writes go through BFT ordering as always; with ``read_fastpath``
        on, reads take the tentative path (2f+1 matching core replies at
        one watermark) and transparently fall back to ordering otherwise.
        """
        config = self.config
        loop = asyncio.get_running_loop()
        if config.shards > 1:
            # Sharded topology: route each request to its key's home shard
            # (one ref — one virtual connection — per shard domain).
            shard_map = config.shard_map()
            refs = {
                domain_id: self.system.ref(domain_id, config.object_key)
                for domain_id in shard_map.domain_ids
            }

            def ref_for(key: str):
                return refs[shard_map.domain_for(key)]

        else:
            home_ref = self.system.ref(config.domain, config.object_key)

            def ref_for(key: str):
                return home_ref

        latencies: list[float] = []
        read_latencies: list[float] = []
        errors: list[str] = []
        okay = 0
        written = 0
        reads = 0
        for index in range(config.requests):
            future: asyncio.Future[Any] = loop.create_future()

            def on_result(value: Any, future: asyncio.Future = future) -> None:
                if not future.done():
                    future.set_result(value)

            started = loop.time()
            operation, args, expected = self._request_plan(index, written)
            is_read = operation in ("get", "mean")
            key = str(args[0]) if self.config.workload == "kv" else ""
            self.element.async_invoke(ref_for(key), operation, args, on_result)
            try:
                value = await asyncio.wait_for(future, timeout=60.0)
            except asyncio.TimeoutError:
                errors.append(f"request {index}: timed out")
                break
            elapsed = loop.time() - started
            latencies.append(elapsed)
            if is_read:
                reads += 1
                read_latencies.append(elapsed)
            else:
                written += 1
            if expected is not None and value != expected:
                errors.append(f"request {index}: got {value!r} != {expected!r}")
            else:
                okay += 1
        report = {
            "node": self.node_id,
            "workload": config.workload,
            "requests": config.requests,
            "completed": len(latencies),
            "okay": okay,
            "errors": errors,
            "latencies": latencies,
            "reads": reads,
            "read_latencies": read_latencies,
        }
        report.update(self._read_path_stats())
        return report

    def _read_path_stats(self) -> dict:
        """Fast-path counters across the client's SMIOP connections."""
        endpoint = getattr(self.element, "endpoint", None)
        hits = fallbacks = sent = 0
        for connection in getattr(endpoint, "connections", {}).values():
            hits += getattr(connection, "read_fastpath_hits", 0)
            fallbacks += getattr(connection, "read_fastpath_fallbacks", 0)
            sent += getattr(connection, "reads_sent", 0)
        return {
            "read_fastpath_hits": hits,
            "read_fastpath_fallbacks": fallbacks,
            "reads_sent": sent,
        }

    # -- shutdown ------------------------------------------------------------

    async def _shutdown(self) -> None:
        element, world = self.element, self.world
        # Drain SMIOP: adapter send queues cleared, virtual connections
        # closed, retransmission timers cancelled.
        orb = getattr(element, "orb", None)
        if orb is not None:
            for protocol in orb._transports.values():
                shutdown = getattr(protocol, "shutdown", None)
                if shutdown is not None:
                    shutdown()
        elif getattr(element, "endpoint", None) is not None:
            element.endpoint.shutdown()
        element.cancel_all_timers()
        assert self.scheduler is not None and self.transport is not None
        self.scheduler.cancel_all()
        await self.transport.stop()
        self._export()
        assert world is not None
        if world.telemetry.enabled:
            from repro.obs import telemetry_records, write_jsonl

            path = os.path.join(self.out_dir, f"{self.node_id}.telemetry.jsonl")
            try:
                write_jsonl(path, telemetry_records(world.telemetry))
            except OSError:
                pass  # telemetry is best-effort on the way down

    def _export(self) -> None:
        assert self.world is not None and self.transport is not None
        assert self.scheduler is not None
        stats = {
            "node": self.node_id,
            "role": self.role,
            "shard": self.shard_label(),
            "rejoin": self.rejoin,
            "rejoin_outcome": self.rejoin_outcome,
            "uptime": self.scheduler.now,
            "timers_fired": self.scheduler.events_executed,
            "transport": dict(self.transport.stats),
            "world": {
                "messages_sent": self.world.stats.messages_sent,
                "messages_delivered": self.world.stats.messages_delivered,
                "multicasts_sent": self.world.stats.multicasts_sent,
                "delivery_errors": self.world.delivery_errors,
            },
        }
        if self.role == "replica":
            stats["replica"] = {
                "dispatched": len(self.element.dispatched),
                "view": self.element.view,
                "diverged": self.element.diverged,
                "last_executed": self.element.last_executed,
                "undecryptable_skipped": self.element.undecryptable_skipped,
                "reads_served": self.element.reads_served,
                "reads_refused": self.element.reads_refused,
            }
        elif self.role == "read-only":
            stats["read_only"] = {
                "feeds_applied": self.element.feeds_applied,
                "watermark": self.element.queue.processed_count,
                "reads_served": self.element.reads_served,
                "reads_refused": self.element.reads_refused,
                "syncs_completed": self.element.syncs_completed,
                "diverged": self.element.diverged,
            }
        elif self.role == "client":
            stats["client"] = self._read_path_stats()
        _write_json(
            os.path.join(self.out_dir, f"{self.node_id}.stats.json"), stats
        )

    # -- main ----------------------------------------------------------------

    async def run(self) -> int:
        loop = asyncio.get_running_loop()
        os.makedirs(self.out_dir, exist_ok=True)
        self.stop_event = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.stop_event.set)
            except (NotImplementedError, RuntimeError):
                pass  # non-POSIX loop: rely on workload completion / kill
        self._build(loop)
        assert self.transport is not None
        await self.transport.start()
        _touch(os.path.join(self.out_dir, f"{self.node_id}.listening"))
        # The cluster barrier. Servers boot together and must see every
        # other server before protocol traffic starts. A client only needs
        # the quorums it will actually use — f crashed replicas (and f_gm
        # crashed GM shares) are a *tolerated* condition, not a boot error.
        try:
            if self.role == "client":
                # One quorum per shard domain: a client of a sharded
                # topology talks to every shard, each with its own f budget.
                groups = [(self.config.gm_ids, self.config.f_gm)]
                groups.extend(
                    (self.config.element_ids_of(domain_id), self.config.f)
                    for domain_id in self.config.domain_ids
                )
                for group, f in groups:
                    await self.transport.ensure_quorum(
                        list(group), len(group) - f, timeout=30.0
                    )
            else:
                # Servers link to the GM domain and their own shard's
                # elements; shards never talk to each other on the wire
                # (the cross-shard coordinator is a simulator deployment).
                peers = [
                    pid
                    for pid in (
                        *self.config.gm_ids,
                        *self.config.element_ids_of(self.home_domain()),
                    )
                    if pid != self.node_id
                ]
                await self.transport.ensure_links(peers, timeout=30.0)
        except (asyncio.TimeoutError, TimeoutError):
            print(
                f"{self.node_id}: cluster barrier timed out "
                f"({self.transport.links_up} links up)",
                file=sys.stderr,
            )
            await self.transport.stop()
            return EXIT_FAILED
        _touch(os.path.join(self.out_dir, f"{self.node_id}.ready"))
        await self._start_role()
        exit_code = EXIT_OK
        if self.role == "client":
            workload = asyncio.ensure_future(self._run_workload())
            stopper = asyncio.ensure_future(self.stop_event.wait())
            done, _pending = await asyncio.wait(
                (workload, stopper), return_when=asyncio.FIRST_COMPLETED
            )
            stopper.cancel()
            if workload in done:
                report = workload.result()
                self.workload_report = report
                _write_json(
                    os.path.join(self.out_dir, f"{self.node_id}.result.json"),
                    report,
                )
                if report["errors"] or report["okay"] < report["requests"]:
                    exit_code = EXIT_FAILED
            else:
                workload.cancel()
        else:
            await self.stop_event.wait()
            if self._rejoin_task is not None:
                if not self._rejoin_task.done():
                    self._rejoin_task.cancel()
                elif self.rejoin_outcome is False:
                    exit_code = EXIT_FAILED
        await self._shutdown()
        return exit_code


async def run_node(
    config: TopologyConfig, node_id: str, out_dir: str, rejoin: bool = False
) -> int:
    return await NodeHarness(config, node_id, out_dir, rejoin=rejoin).run()


def main(argv: list[str]) -> int:
    """``python -m repro serve --config T.toml --node PID --out DIR``."""
    config_path = node_id = None
    out_dir = "."
    rejoin = False
    it = iter(argv)
    for arg in it:
        if arg == "--config":
            config_path = next(it, None)
        elif arg == "--node":
            node_id = next(it, None)
        elif arg == "--out":
            out_dir = next(it, None) or "."
        elif arg == "--rejoin":
            rejoin = True
        else:
            print(f"serve: unknown argument {arg!r}", file=sys.stderr)
            return EXIT_USAGE
    if config_path is None or node_id is None:
        print(
            "serve: usage: serve --config topology.toml --node PID "
            "[--out DIR] [--rejoin]",
            file=sys.stderr,
        )
        return EXIT_USAGE
    try:
        config = TopologyConfig.load(config_path)
    except (OSError, ValueError) as exc:
        print(f"serve: cannot load {config_path}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    try:
        return asyncio.run(run_node(config, node_id, out_dir, rejoin=rejoin))
    except KeyboardInterrupt:
        return EXIT_OK
