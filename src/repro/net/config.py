"""Topology files: the out-of-band configuration of a real deployment.

The paper assumes deployment-time configuration distributed out of band
(§2.2): domain membership, key material, addresses. For the wire backend
that is a TOML file every node reads at boot::

    [system]
    seed = 42          # ALL key material derives from this — every node
    f = 1              # must boot from the byte-identical topology file
    domain = "calc"
    workload = "calc"  # calc | kv
    clients = ["client-0"]
    readers = 0        # non-voting read-tier nodes (role "read-only", E19)
    read_fastpath = false  # allow tentative reads at the clients

    [net]
    host = "127.0.0.1"
    base_port = 42000

    [client]
    requests = 20
    read_fraction = 0.0    # share of client requests that are reads

    [faults]           # optional net-level degradation (repro.net.faults)
    drop = 0.01
    [[faults.link]]
    src = "calc-e0"
    dst = "calc-e1"
    delay = 0.005

Every process constructs the *entire* :class:`ItdosSystem` from the same
seed in the same order, so RSA keypairs, GM pairwise keys, and DPRF shares
come out identical across OS processes — the simulator's bootstrap doubles
as the PKI ceremony. Each node then lifts only its own element onto the
wire; the rest of the in-memory deployment is inert scaffolding.

Parsed with :mod:`tomllib` where available (Python >= 3.11); a small
built-in subset parser covers 3.10 so the CI matrix needs no new deps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.net.framing import DEFAULT_MAX_FRAME


class TopologyError(ValueError):
    """A topology file is missing, malformed, or inconsistent."""


# -- TOML loading (tomllib >= 3.11, subset fallback for 3.10) ----------------


def _parse_value(text: str) -> Any:
    text = text.strip()
    if text.startswith("[") and text.endswith("]"):
        inner = text[1:-1].strip()
        if not inner:
            return []
        # Split on commas outside quotes (subset: no nested arrays).
        items, depth, quote, start = [], 0, None, 0
        for at, ch in enumerate(inner):
            if quote:
                if ch == quote:
                    quote = None
            elif ch in "\"'":
                quote = ch
            elif ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == "," and depth == 0:
                items.append(inner[start:at])
                start = at + 1
        items.append(inner[start:])
        return [_parse_value(item) for item in items if item.strip()]
    if (text.startswith('"') and text.endswith('"')) or (
        text.startswith("'") and text.endswith("'")
    ):
        return text[1:-1]
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise TopologyError(f"cannot parse TOML value {text!r}") from None


def _strip_comment(line: str) -> str:
    quote = None
    for at, ch in enumerate(line):
        if quote:
            if ch == quote:
                quote = None
        elif ch in "\"'":
            quote = ch
        elif ch == "#":
            return line[:at]
    return line


def _toml_subset_loads(text: str) -> dict:
    """Minimal TOML reader: tables, arrays of tables, scalar/array values.

    Only what topology files use — Python 3.10 lacks ``tomllib`` and the
    container bakes no third-party parser.
    """
    root: dict[str, Any] = {}
    current = root
    for raw in text.splitlines():
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if line.startswith("[[") and line.endswith("]]"):
            target = root
            parts = line[2:-2].strip().split(".")
            for part in parts[:-1]:
                target = target.setdefault(part, {})
            current = {}
            target.setdefault(parts[-1], []).append(current)
        elif line.startswith("[") and line.endswith("]"):
            target = root
            for part in line[1:-1].strip().split("."):
                target = target.setdefault(part, {})
            current = target
        elif "=" in line:
            key, _, value = line.partition("=")
            current[key.strip()] = _parse_value(value)
        else:
            raise TopologyError(f"cannot parse TOML line {raw!r}")
    return root


def load_toml(path: str) -> dict:
    try:
        import tomllib  # Python >= 3.11
    except ImportError:
        tomllib = None
    with open(path, "rb") as handle:
        data = handle.read()
    if tomllib is not None:
        try:
            return tomllib.loads(data.decode("utf-8"))
        except tomllib.TOMLDecodeError as exc:
            raise TopologyError(f"{path}: {exc}") from exc
    return _toml_subset_loads(data.decode("utf-8"))


# -- the topology ------------------------------------------------------------


@dataclass
class TopologyConfig:
    """One cluster deployment, shared byte-identically by every node."""

    seed: int = 0
    f: int = 1
    f_gm: int = 1
    domain: str = "calc"
    workload: str = "calc"
    clients: tuple[str, ...] = ("client-0",)
    host: str = "127.0.0.1"
    base_port: int = 42000
    requests: int = 20
    telemetry: bool = True
    max_frame_bytes: int = DEFAULT_MAX_FRAME
    queue_limit: int = 1024
    faults: dict = field(default_factory=dict)
    # Read fast path (E19): number of non-voting read-tier nodes (role
    # "read-only"), whether clients may use tentative reads at all, and
    # what fraction of the client workload is reads (0.0 = all writes,
    # 0.9 = the 90/10 mix, 0.99 = the 99/1 mix).
    readers: int = 0
    read_fastpath: bool = False
    read_fraction: float = 0.0
    # Sharding (E20): partition the object space across this many
    # replication domains ("{domain}-s{i}"). shards = 1 is the unsharded
    # topology, byte-identical to a pre-sharding deployment. The wire
    # backend shards the kv workload's single-key traffic; cross-shard
    # transactions (the coordinator domain) are exercised in the simulator.
    shards: int = 1

    def __post_init__(self) -> None:
        if self.f < 1 or self.f_gm < 1:
            raise TopologyError("f and f_gm must be >= 1")
        if self.workload not in ("calc", "kv"):
            raise TopologyError(f"unknown workload {self.workload!r}")
        if not self.clients:
            raise TopologyError("topology needs at least one client")
        if self.readers < 0:
            raise TopologyError("readers must be >= 0")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise TopologyError("read_fraction must be in [0, 1]")
        if self.shards < 1:
            raise TopologyError("shards must be >= 1")
        if self.shards > 1 and self.workload != "kv":
            raise TopologyError("sharded topologies require the kv workload")
        if self.shards > 1 and self.readers:
            raise TopologyError("sharded topologies do not take a read tier")
        self.clients = tuple(self.clients)

    # -- derived membership (must match ItdosSystem's naming exactly) -------

    @property
    def gm_ids(self) -> tuple[str, ...]:
        return tuple(f"gm-{i}" for i in range(3 * self.f_gm + 1))

    def shard_map(self):
        """The key → shard-domain layout every node and client agrees on."""
        from repro.itdos.sharding import ShardMap

        return ShardMap(self.domain, self.shards)

    @property
    def domain_ids(self) -> tuple[str, ...]:
        """Every shard replication domain (just ``domain`` when unsharded)."""
        if self.shards == 1:
            return (self.domain,)
        return tuple(f"{self.domain}-s{i}" for i in range(self.shards))

    def element_ids_of(self, domain_id: str) -> tuple[str, ...]:
        return tuple(f"{domain_id}-e{i}" for i in range(3 * self.f + 1))

    @property
    def element_ids(self) -> tuple[str, ...]:
        """All replica ids across every shard, in shard order."""
        return tuple(
            pid
            for domain_id in self.domain_ids
            for pid in self.element_ids_of(domain_id)
        )

    @property
    def read_only_ids(self) -> tuple[str, ...]:
        return tuple(f"{self.domain}-r{i}" for i in range(self.readers))

    @property
    def object_key(self) -> bytes:
        return b"calc" if self.workload == "calc" else b"kv"

    def node_ids(self) -> tuple[str, ...]:
        """Every OS process in the cluster, in canonical boot order."""
        return self.gm_ids + self.element_ids + self.read_only_ids + self.clients

    def role_of(self, node_id: str) -> str:
        if node_id in self.gm_ids:
            return "gm"
        if node_id in self.element_ids:
            return "replica"
        if node_id in self.read_only_ids:
            return "read-only"
        if node_id in self.clients:
            return "client"
        raise TopologyError(f"unknown node {node_id!r}")

    def address_book(self) -> dict[str, tuple[str, int]]:
        return {
            pid: (self.host, self.base_port + index)
            for index, pid in enumerate(self.node_ids())
        }

    def groups(self) -> dict[str, tuple[str, ...]]:
        """Multicast address map (same shape the sim's group registry has)."""
        out: dict[str, tuple[str, ...]] = {"gm": self.gm_ids}
        for domain_id in self.domain_ids:
            out[domain_id] = self.element_ids_of(domain_id)
        return out

    # -- deterministic deployment -------------------------------------------

    def build_system(self):
        """The full in-memory deployment every node derives its keys from.

        Construction order is the contract: GM domain, then the server
        domain, then clients in listed order — any deviation desynchronises
        the RNG stream and the cluster's key material stops matching.
        """
        from repro.itdos.bootstrap import ItdosSystem
        from repro.workloads.scenarios import (
            CalculatorServant,
            KvStoreServant,
            ShardKvServant,
            standard_repository,
        )

        system = ItdosSystem(
            seed=self.seed,
            f_gm=self.f_gm,
            repository=standard_repository(),
            read_fastpath=self.read_fastpath,
        )
        if self.shards > 1:
            # Shard domains only: single-key traffic fans out per shard on
            # the wire; the cross-shard coordinator stays a simulator
            # concern, so no "{domain}-txc" processes exist out here.
            system.add_sharded_domain(
                self.domain,
                shards=self.shards,
                f=self.f,
                servants=lambda element: {b"kv": ShardKvServant()},
                object_key=b"kv",
                cross_shard=False,
            )
        elif self.workload == "kv":
            system.add_server_domain(
                self.domain,
                f=self.f,
                servants=lambda element: {b"kv": KvStoreServant()},
                readers=self.readers,
            )
        else:
            system.add_server_domain(
                self.domain,
                f=self.f,
                servants=lambda element: {b"calc": CalculatorServant()},
                readers=self.readers,
            )
        for name in self.clients:
            system.add_client(name)
        return system

    # -- loading -------------------------------------------------------------

    @staticmethod
    def from_dict(spec: dict) -> "TopologyConfig":
        system = spec.get("system", {})
        net = spec.get("net", {})
        client = spec.get("client", {})
        clients = system.get("clients", ["client-0"])
        if isinstance(clients, str):
            clients = [clients]
        return TopologyConfig(
            seed=int(system.get("seed", 0)),
            f=int(system.get("f", 1)),
            f_gm=int(system.get("f_gm", 1)),
            domain=str(system.get("domain", "calc")),
            workload=str(system.get("workload", "calc")),
            clients=tuple(str(name) for name in clients),
            host=str(net.get("host", "127.0.0.1")),
            base_port=int(net.get("base_port", 42000)),
            requests=int(client.get("requests", 20)),
            telemetry=bool(net.get("telemetry", True)),
            max_frame_bytes=int(net.get("max_frame", DEFAULT_MAX_FRAME)),
            queue_limit=int(net.get("queue_limit", 1024)),
            faults=dict(spec.get("faults", {})),
            readers=int(system.get("readers", 0)),
            read_fastpath=bool(system.get("read_fastpath", False)),
            read_fraction=float(client.get("read_fraction", 0.0)),
            shards=int(system.get("shards", 1)),
        )

    @staticmethod
    def load(path: str) -> "TopologyConfig":
        return TopologyConfig.from_dict(load_toml(path))
