"""Net-level fault injection: the chaos adversary's knobs on a real wire.

The simulator's :mod:`repro.chaos` adversary intercepts payloads inside
the deterministic world; this shim mirrors its *infrastructure* knobs —
per-link drop probability, added delay, partitions — at the TCP
transport's send gate, so a real cluster can be subjected to the same
degradations whose consequences the simulator has already certified.
Deliberately narrower than the chaos adversary: corruption/equivocation
stay in the oracle, where invariants can judge them; the wire shim only
degrades, never forges.

Link keys are directed ``(src, dst)`` pairs; the empty string matches any
process, so ``("", "")`` configures a cluster-wide default.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass
class LinkFault:
    """Degradation applied to one directed link."""

    drop_probability: float = 0.0
    delay: float = 0.0  # fixed extra seconds per message
    partitioned: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError("drop_probability must be in [0, 1]")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")


class NetFaultInjector:
    """Seeded per-link drop/delay/partition decisions for the TCP backend."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self._links: dict[tuple[str, str], LinkFault] = {}
        self.dropped = 0
        self.delayed = 0

    def set_link(self, src: str, dst: str, fault: LinkFault) -> None:
        """Configure one directed link ("" wildcards either side)."""
        self._links[(src, dst)] = fault

    def partition(self, side_a: set[str], side_b: set[str]) -> None:
        """Disconnect both directions of every (a, b) pair — same call
        shape as :meth:`repro.sim.network.Network.partition`."""
        for a in side_a:
            for b in side_b:
                if a != b:
                    for key in ((a, b), (b, a)):
                        fault = self._links.setdefault(key, LinkFault())
                        fault.partitioned = True

    def heal(self) -> None:
        for fault in self._links.values():
            fault.partitioned = False

    def _fault_for(self, src: str, dst: str) -> LinkFault | None:
        for key in ((src, dst), (src, ""), ("", dst), ("", "")):
            fault = self._links.get(key)
            if fault is not None:
                return fault
        return None

    def verdict(self, src: str, dst: str) -> tuple[str, float]:
        """``("drop", 0)``, ``("delay", seconds)``, or ``("pass", 0)``."""
        fault = self._fault_for(src, dst)
        if fault is None:
            return ("pass", 0.0)
        if fault.partitioned:
            self.dropped += 1
            return ("drop", 0.0)
        if fault.drop_probability and self.rng.random() < fault.drop_probability:
            self.dropped += 1
            return ("drop", 0.0)
        if fault.delay:
            self.delayed += 1
            return ("delay", fault.delay)
        return ("pass", 0.0)

    @staticmethod
    def from_config(spec: dict, seed: int = 0) -> "NetFaultInjector":
        """Build from a topology file's ``[faults]`` table.

        ``drop``/``delay`` set the cluster-wide default link;
        ``[[faults.link]]`` entries override individual directed links.
        """
        injector = NetFaultInjector(seed=seed)
        default = LinkFault(
            drop_probability=float(spec.get("drop", 0.0)),
            delay=float(spec.get("delay", 0.0)),
        )
        if default.drop_probability or default.delay:
            injector.set_link("", "", default)
        for link in spec.get("link", []):
            injector.set_link(
                str(link.get("src", "")),
                str(link.get("dst", "")),
                LinkFault(
                    drop_probability=float(link.get("drop", 0.0)),
                    delay=float(link.get("delay", 0.0)),
                    partitioned=bool(link.get("partitioned", False)),
                ),
            )
        return injector
