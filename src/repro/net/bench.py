"""E18 drivers: the same workload over the sim backend and the real wire.

The simulator certifies protocol *logic*; E18 certifies that the deployable
artifact carries the same protocol over TCP and measures what reality
costs. Both drivers run the identical ordered echo workload (sequential
``add(i, 1000)`` invocations against an f=1 calculator domain behind the
Group Manager) and report request throughput and latency:

* **sim** — one in-process world; latency is simulated seconds per
  request, throughput is how fast the host executes the simulation;
* **wire** — 9 OS processes (4 GM + 4 replicas + 1 client) over loopback
  TCP via :class:`~repro.net.launcher.ClusterLauncher`; latency is real
  seconds per voted reply, measured at the client stub.
"""

from __future__ import annotations

import os
import socket
import tempfile
import time

from repro.net.config import TopologyConfig
from repro.net.launcher import ClusterLauncher


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def pick_base_port(count: int, attempts: int = 64) -> int:
    """A base port with ``count`` consecutive free TCP ports above it.

    Raciness is inherent (another process can grab a port between probe
    and bind); the launcher surfaces that as a node failing to come ready,
    and callers retry with a fresh range.
    """
    import random

    rng = random.Random(os.getpid() ^ int(time.time() * 1000))
    for _ in range(attempts):
        base = rng.randrange(20000, 60000 - count)
        sockets = []
        try:
            for offset in range(count):
                probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
                probe.bind(("127.0.0.1", base + offset))
                sockets.append(probe)
            return base
        except OSError:
            continue
        finally:
            for probe in sockets:
                probe.close()
    raise RuntimeError(f"no free range of {count} loopback ports found")


def run_sim_benchmark(requests: int = 40, seed: int = 7) -> dict:
    """The E18 workload on the discrete-event backend."""
    from repro.workloads.scenarios import build_calc_system

    system = build_calc_system(f=1, seed=seed)
    client = system.add_client("client-0")
    stub = client.stub(system.ref("calc", b"calc"))
    system.settle(1.0)  # GM coin bootstrap off the measured path
    sim_latencies: list[float] = []
    started_wall = time.perf_counter()
    for index in range(requests):
        started_sim = system.network.now
        result = stub.add(float(index), 1000.0)
        assert result == float(index) + 1000.0
        sim_latencies.append(system.network.now - started_sim)
    elapsed = time.perf_counter() - started_wall
    return {
        "backend": "sim",
        "requests": requests,
        "completed": requests,
        "wall_seconds": elapsed,
        "requests_per_second": requests / elapsed if elapsed > 0 else 0.0,
        "latency_p50": percentile(sim_latencies, 0.50),
        "latency_p99": percentile(sim_latencies, 0.99),
        "latency_unit": "simulated seconds",
        "messages_sent": system.network.stats.messages_sent,
        "bytes_sent": system.network.stats.bytes_sent,
    }


def run_wire_benchmark(
    requests: int = 40,
    seed: int = 7,
    base_port: int | None = None,
    work_dir: str | None = None,
    telemetry: bool = False,
    keep_dir: bool = False,
    shards: int = 1,
) -> dict:
    """The E18 workload on a real 9-process loopback cluster.

    ``shards > 1`` switches to the sharded kv topology (E20): one
    replication domain per shard, the client routing every key to its home
    shard — 4 more processes per extra shard.
    """
    config = TopologyConfig(
        seed=seed,
        requests=requests,
        telemetry=telemetry,
        workload="kv" if shards > 1 else "calc",
        domain="kv" if shards > 1 else "calc",
        shards=shards,
    )
    config.base_port = (
        base_port if base_port is not None else pick_base_port(len(config.node_ids()))
    )
    owns_dir = work_dir is None
    if owns_dir:
        work_dir = tempfile.mkdtemp(prefix="repro-net-bench-")
    started_wall = time.perf_counter()
    with ClusterLauncher(config, work_dir) as cluster:
        cluster.start_servers()
        barrier_seconds = time.perf_counter() - started_wall
        report = cluster.run_client()
        codes = cluster.shutdown()
        stats = {
            pid: cluster.stats_of(pid)
            for pid in (*config.gm_ids, *config.element_ids)
        }
    elapsed = time.perf_counter() - started_wall
    latencies = report["latencies"]
    busy = sum(latencies)
    frames = sum(
        (s or {}).get("transport", {}).get("frames_sent", 0)
        for s in stats.values()
    )
    wire_bytes = sum(
        (s or {}).get("transport", {}).get("bytes_sent", 0)
        for s in stats.values()
    )
    result = {
        "backend": "wire",
        "shards": shards,
        "processes": len(config.node_ids()),
        "requests": report["requests"],
        "completed": report["completed"],
        "okay": report["okay"],
        "errors": report["errors"],
        "wall_seconds": elapsed,
        "barrier_seconds": barrier_seconds,
        "requests_per_second": (
            report["completed"] / busy if busy > 0 else 0.0
        ),
        "latency_p50": percentile(latencies, 0.50),
        "latency_p99": percentile(latencies, 0.99),
        "latency_unit": "real seconds",
        "frames_sent": frames,
        "bytes_sent": wire_bytes,
        "server_exit_codes": {
            pid: code for pid, code in codes.items() if code != 0
        },
        "work_dir": work_dir if (keep_dir or not owns_dir) else None,
    }
    if owns_dir and not keep_dir:
        import shutil

        shutil.rmtree(work_dir, ignore_errors=True)
    return result


def run_comparison(requests: int = 40, seed: int = 7, **wire_kwargs) -> dict:
    """Sim and wire back to back — the BENCH_E18.json payload."""
    sim = run_sim_benchmark(requests=requests, seed=seed)
    wire = run_wire_benchmark(requests=requests, seed=seed, **wire_kwargs)
    return {
        "experiment": "E18",
        "title": "sim vs real-wire execution backend",
        "workload": f"{requests} sequential voted add() invocations, f=1",
        "sim": sim,
        "wire": wire,
    }
