"""Payload-object ↔ bytes codec shared by both execution backends.

The simulator hands :class:`~repro.sim.process.Process` objects *Python
objects* (frozen protocol dataclasses); a TCP socket hands the peer bytes.
This module is the contract between the two: every payload a process may
legitimately put on the wire encodes to canonical bytes and decodes back
to an equal object, so

* the asyncio backend can carry the exact same protocol traffic, and
* the simulator can *assert* that no object-graph leakage crosses a
  process boundary (``Network.check_wire``) — a payload only a shared
  address space could deliver is a bug the real wire would surface as a
  crash, so the oracle surfaces it first.

Encoding is the canonical TLV scheme (:mod:`repro.crypto.encoding`) over a
shape-driven translation: a registered dataclass becomes
``{"__wire__": <name>, "f": {<field>: <value>...}}`` with every field
translated recursively (including ``auth`` material, which the *signed*
canonical form deliberately excludes — the wire must carry it). Decoding
rebuilds objects bottom-up and restores tuple-ness from the dataclass's
type hints, so a round-tripped message is ``==`` to the original and
re-encodes byte-identically.
"""

from __future__ import annotations

import dataclasses
import typing
from typing import Any

from repro.crypto.encoding import canonical_bytes, parse_canonical

_WIRE_KEY = "__wire__"
_FIELDS_KEY = "f"


class WireCodecError(ValueError):
    """Payload cannot cross a real process boundary."""


_REGISTRY: dict[str, type] = {}
_BY_CLASS: dict[type, str] = {}
_HINT_CACHE: dict[type, dict[str, Any]] = {}


def register_wire_type(cls: type, name: str | None = None) -> type:
    """Register a frozen-dataclass payload type for wire transfer.

    Idempotent for the same class; a different class under an existing
    name is a deployment bug and raises.
    """
    wire_name = name or cls.__name__
    existing = _REGISTRY.get(wire_name)
    if existing is not None and existing is not cls:
        raise ValueError(f"wire type {wire_name!r} already registered")
    _REGISTRY[wire_name] = cls
    _BY_CLASS[cls] = wire_name
    return cls


def registered_wire_types() -> dict[str, type]:
    return dict(_REGISTRY)


def _hints_for(cls: type) -> dict[str, Any]:
    hints = _HINT_CACHE.get(cls)
    if hints is None:
        # PEP 563 modules store hints as strings; resolve them once.
        hints = typing.get_type_hints(cls)
        _HINT_CACHE[cls] = hints
    return hints


def _encode_value(value: Any) -> Any:
    name = _BY_CLASS.get(type(value))
    if name is not None:
        return {
            _WIRE_KEY: name,
            _FIELDS_KEY: {
                f.name: _encode_value(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    if isinstance(value, dict):
        return {key: _encode_value(item) for key, item in value.items()}
    return value


def _coerce(value: Any, hint: Any) -> Any:
    """Restore container types the canonical encoding flattens (tuples)."""
    if hint is None:
        return value
    origin = typing.get_origin(hint)
    if origin is tuple or hint is tuple:
        if not isinstance(value, (list, tuple)):
            raise WireCodecError(f"expected sequence for {hint}, got {type(value).__name__}")
        args = typing.get_args(hint)
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(_coerce(item, args[0]) for item in value)
        if args:
            if len(args) != len(value):
                raise WireCodecError(
                    f"expected {len(args)}-tuple for {hint}, got {len(value)} items"
                )
            return tuple(_coerce(item, arg) for item, arg in zip(value, args))
        return tuple(value)
    # Unions (e.g. ``dict[str, bytes] | bytes | None`` auth) and atoms pass
    # through: the shape-driven decode already rebuilt any nested objects.
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if value.keys() == {_WIRE_KEY, _FIELDS_KEY}:
            name = value[_WIRE_KEY]
            cls = _REGISTRY.get(name)
            if cls is None:
                raise WireCodecError(f"unknown wire type {name!r}")
            raw_fields = value[_FIELDS_KEY]
            if not isinstance(raw_fields, dict):
                raise WireCodecError(f"wire type {name!r}: fields is not a dict")
            hints = _hints_for(cls)
            kwargs: dict[str, Any] = {}
            for f in dataclasses.fields(cls):
                if f.name not in raw_fields:
                    continue  # absent field: the dataclass default applies
                kwargs[f.name] = _coerce(
                    _decode_value(raw_fields[f.name]), hints.get(f.name)
                )
            try:
                return cls(**kwargs)
            except (TypeError, ValueError) as exc:
                raise WireCodecError(f"cannot rebuild {name}: {exc}") from exc
        return {key: _decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def encode_wire_payload(payload: Any) -> bytes:
    """Canonical bytes for one cross-process payload (object or plain value)."""
    try:
        return canonical_bytes(_encode_value(payload))
    except (TypeError, ValueError) as exc:
        raise WireCodecError(
            f"payload {type(payload).__name__} is not wire-encodable: {exc}"
        ) from exc


def decode_wire_payload(raw: bytes) -> Any:
    """Inverse of :func:`encode_wire_payload`."""
    try:
        parsed = parse_canonical(raw)
    except ValueError as exc:
        raise WireCodecError(f"malformed wire payload: {exc}") from exc
    return _decode_value(parsed)


def assert_wire_encodable(payload: Any) -> bytes:
    """Round-trip ``payload`` through the codec, raising on any infidelity.

    Checks both value equality (the protocol's view) and re-encode byte
    identity (covers ``auth`` material that dataclass ``==`` deliberately
    ignores). Returns the encoding so callers can reuse it.
    """
    wire = encode_wire_payload(payload)
    decoded = decode_wire_payload(wire)
    if decoded != payload and not (
        isinstance(payload, tuple) and list(payload) == decoded
    ):
        raise WireCodecError(
            f"payload {type(payload).__name__} does not round-trip: "
            f"{payload!r} != {decoded!r}"
        )
    again = encode_wire_payload(decoded)
    if again != wire:
        raise WireCodecError(
            f"payload {type(payload).__name__} re-encodes differently "
            "(auth or field-order infidelity)"
        )
    return wire


def encode_datagram(src: str, dst: str, payload: Any) -> bytes:
    """One addressed frame body: who sent it, who it is for, the payload."""
    return canonical_bytes({"src": src, "dst": dst, "p": encode_wire_payload(payload)})


def decode_datagram(body: bytes) -> tuple[str, str, Any]:
    try:
        fields = parse_canonical(body)
    except ValueError as exc:
        raise WireCodecError(f"malformed datagram: {exc}") from exc
    if (
        not isinstance(fields, dict)
        or not isinstance(fields.get("src"), str)
        or not isinstance(fields.get("dst"), str)
        or not isinstance(fields.get("p"), bytes)
    ):
        raise WireCodecError("datagram missing src/dst/payload")
    return fields["src"], fields["dst"], decode_wire_payload(fields["p"])


def _register_builtin_types() -> None:
    """Register every payload type the protocol layers put on the wire."""
    from repro.bft import messages as bft
    from repro.itdos import messages as itdos
    from repro.recovery import messages as recovery

    for cls in (
        bft.ClientRequest,
        bft.BatchMsg,
        bft.PrePrepareMsg,
        bft.PrepareMsg,
        bft.CommitMsg,
        bft.BftReply,
        bft.CheckpointMsg,
        bft.PreparedCertificate,
        bft.ViewChangeMsg,
        bft.NewViewMsg,
        bft.StatusMsg,
        bft.FillMsg,
        bft.StateRequestMsg,
        bft.StateResponseMsg,
        itdos.SmiopRequest,
        itdos.SmiopReply,
        itdos.BodyRequest,
        itdos.BodyReply,
        itdos.ReadRequest,
        itdos.ReadReply,
        itdos.CommitFeed,
        itdos.ReadSyncRequest,
        itdos.ReadSyncResponse,
        itdos.GmShareEnvelope,
        itdos.OpenRequest,
        itdos.ProofItem,
        itdos.ChangeRequest,
        itdos.RekeyTick,
        itdos.ReadmitRequest,
        itdos.CoinMessage,
        recovery.RejoinPetition,
        recovery.QueueStateRequest,
        recovery.QueueStateResponse,
    ):
        register_wire_type(cls)


_register_builtin_types()
