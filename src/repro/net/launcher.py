"""Subprocess cluster launcher: boot a whole topology of real nodes.

Drives ``python -m repro serve`` once per node — the same entry point an
operator uses — so tests and benchmarks exercise the deployable artifact,
not a shortcut. The launcher writes the topology file, starts every server
node, waits for their ``.ready`` breadcrumbs (the cluster barrier), runs
clients to completion, and can kill and restart individual replicas to
exercise the crash → readmission path on real processes.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

from repro.net.config import TopologyConfig


def write_topology(config: TopologyConfig, path: str) -> str:
    """Render a TopologyConfig back to the TOML every node will load."""
    clients = ", ".join(f'"{name}"' for name in config.clients)
    lines = [
        "[system]",
        f"seed = {config.seed}",
        f"f = {config.f}",
        f"f_gm = {config.f_gm}",
        f'domain = "{config.domain}"',
        f'workload = "{config.workload}"',
        f"clients = [{clients}]",
        f"readers = {config.readers}",
        f"read_fastpath = {'true' if config.read_fastpath else 'false'}",
        f"shards = {config.shards}",
        "",
        "[net]",
        f'host = "{config.host}"',
        f"base_port = {config.base_port}",
        f"telemetry = {'true' if config.telemetry else 'false'}",
        f"max_frame = {config.max_frame_bytes}",
        f"queue_limit = {config.queue_limit}",
        "",
        "[client]",
        f"requests = {config.requests}",
        f"read_fraction = {config.read_fraction}",
    ]
    if config.faults:
        lines.append("")
        lines.append("[faults]")
        for key in ("drop", "delay"):
            if config.faults.get(key):
                lines.append(f"{key} = {config.faults[key]}")
        for link in config.faults.get("link", []):
            lines.append("")
            lines.append("[[faults.link]]")
            for key, value in link.items():
                if isinstance(value, str):
                    lines.append(f'{key} = "{value}"')
                elif isinstance(value, bool):
                    lines.append(f"{key} = {'true' if value else 'false'}")
                else:
                    lines.append(f"{key} = {value}")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return path


class ClusterLauncher:
    """One real cluster: GM + replicas as subprocesses, clients on demand."""

    def __init__(
        self, config: TopologyConfig, work_dir: str, env: dict | None = None
    ) -> None:
        self.config = config
        self.work_dir = work_dir
        self.out_dir = os.path.join(work_dir, "nodes")
        os.makedirs(self.out_dir, exist_ok=True)
        self.topology_path = write_topology(
            config, os.path.join(work_dir, "topology.toml")
        )
        self.procs: dict[str, subprocess.Popen] = {}
        self.env = dict(env or os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..")
        self.env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.abspath(src), self.env.get("PYTHONPATH")) if p
        )

    # -- process control -----------------------------------------------------

    def spawn(self, node_id: str, rejoin: bool = False) -> subprocess.Popen:
        if node_id in self.procs and self.procs[node_id].poll() is None:
            raise RuntimeError(f"node {node_id!r} is already running")
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--config",
            self.topology_path,
            "--node",
            node_id,
            "--out",
            self.out_dir,
        ]
        if rejoin:
            argv.append("--rejoin")
        log = open(  # noqa: SIM115 - handle lives as long as the process
            os.path.join(self.out_dir, f"{node_id}.log"), "ab"
        )
        proc = subprocess.Popen(
            argv, stdout=log, stderr=subprocess.STDOUT, env=self.env
        )
        proc._repro_log = log  # type: ignore[attr-defined]
        self.procs[node_id] = proc
        return proc

    def start_servers(self, ready_timeout: float = 60.0) -> None:
        """Boot GM + replica (+ read-tier) nodes; wait for ``.ready`` files."""
        server_ids = (
            *self.config.gm_ids,
            *self.config.element_ids,
            *self.config.read_only_ids,
        )
        for node_id in server_ids:
            self.spawn(node_id)
        self.wait_ready(server_ids, timeout=ready_timeout)

    def wait_ready(self, node_ids, timeout: float = 60.0) -> None:
        deadline = time.monotonic() + timeout
        pending = set(node_ids)
        while pending:
            for node_id in list(pending):
                if os.path.exists(
                    os.path.join(self.out_dir, f"{node_id}.ready")
                ):
                    pending.discard(node_id)
                    continue
                proc = self.procs.get(node_id)
                if proc is not None and proc.poll() is not None:
                    raise RuntimeError(
                        f"node {node_id!r} exited rc={proc.returncode} before "
                        f"ready; log: {self._tail(node_id)}"
                    )
            if pending and time.monotonic() > deadline:
                raise TimeoutError(
                    f"nodes never became ready: {sorted(pending)}"
                )
            if pending:
                time.sleep(0.05)

    def run_client(self, name: str | None = None, timeout: float = 120.0) -> dict:
        """Run one client node to completion; returns its result report."""
        node_id = name or self.config.clients[0]
        proc = self.spawn(node_id)
        try:
            rc = proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
            raise TimeoutError(
                f"client {node_id!r} timed out; log: {self._tail(node_id)}"
            ) from None
        result_path = os.path.join(self.out_dir, f"{node_id}.result.json")
        if not os.path.exists(result_path):
            raise RuntimeError(
                f"client {node_id!r} rc={rc} left no result; "
                f"log: {self._tail(node_id)}"
            )
        with open(result_path, encoding="utf-8") as handle:
            report = json.load(handle)
        report["exit_code"] = rc
        return report

    def kill(self, node_id: str) -> None:
        """SIGKILL — the crash fault, not a graceful stop."""
        proc = self.procs.get(node_id)
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait()
        for marker in ("ready", "listening"):
            path = os.path.join(self.out_dir, f"{node_id}.{marker}")
            if os.path.exists(path):
                os.unlink(path)

    def restart(
        self, node_id: str, rejoin: bool = True, ready_timeout: float = 60.0
    ) -> subprocess.Popen:
        """Boot a fresh process for a killed node (the readmission path)."""
        proc = self.spawn(node_id, rejoin=rejoin)
        self.wait_ready([node_id], timeout=ready_timeout)
        return proc

    # -- teardown & forensics ------------------------------------------------

    def stats_of(self, node_id: str) -> dict | None:
        path = os.path.join(self.out_dir, f"{node_id}.stats.json")
        if not os.path.exists(path):
            return None
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)

    def _tail(self, node_id: str, lines: int = 12) -> str:
        path = os.path.join(self.out_dir, f"{node_id}.log")
        try:
            with open(path, encoding="utf-8", errors="replace") as handle:
                return " | ".join(handle.read().splitlines()[-lines:])
        except OSError:
            return "(no log)"

    def shutdown(self, timeout: float = 15.0) -> dict[str, int]:
        """SIGTERM every live node and collect exit codes."""
        codes: dict[str, int] = {}
        for node_id, proc in self.procs.items():
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for node_id, proc in self.procs.items():
            try:
                codes[node_id] = proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                codes[node_id] = proc.wait()
            log = getattr(proc, "_repro_log", None)
            if log is not None:
                log.close()
        return codes

    def __enter__(self) -> "ClusterLauncher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
