"""Length-prefixed frame codec for the TCP backend.

A frame is ``MAGIC (4) | length (4, big-endian) | body (length bytes)``.
TCP is a byte stream: one ``write()`` may arrive split across many reads
or coalesced with its neighbours, so the decoder is an incremental state
machine — feed it arbitrary chunks, collect whole frame bodies.

Hardening (the paper's §2.2 threat model reaches the wire here):

* a frame announcing a body larger than ``max_frame_bytes`` is rejected
  *before* any allocation proportional to the claim — a Byzantine peer
  cannot balloon our memory with a 4 GiB length prefix;
* a bad magic means the stream is desynchronised (or the peer is not
  speaking our protocol); there is no resynchronisation heuristic — the
  connection must be dropped and re-established;
* truncated frames simply stay buffered: TCP delivers the rest or the
  connection dies, and a half frame is never exposed to the payload layer.
"""

from __future__ import annotations

import struct

MAGIC = b"RPN1"
HEADER_SIZE = len(MAGIC) + 4
#: Default ceiling on one frame's body. Queue-state snapshots are the
#: largest payloads in the system; 16 MiB leaves headroom over the 4 MiB
#: default MessageQueue bound while still refusing absurd claims.
DEFAULT_MAX_FRAME = 16 << 20


class FrameError(ValueError):
    """The byte stream is not a valid frame sequence (drop the connection)."""


def encode_frame(body: bytes, max_frame_bytes: int = DEFAULT_MAX_FRAME) -> bytes:
    """One wire frame around ``body``. Oversize bodies refuse to encode —
    the sender must fail loudly rather than emit a frame every correct
    receiver rejects."""
    if len(body) > max_frame_bytes:
        raise FrameError(
            f"frame body {len(body)} bytes exceeds limit {max_frame_bytes}"
        )
    return MAGIC + struct.pack(">I", len(body)) + body


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary read chunking."""

    def __init__(self, max_frame_bytes: int = DEFAULT_MAX_FRAME) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()
        self.frames_decoded = 0

    @property
    def buffered(self) -> int:
        """Bytes held waiting for the rest of a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb one read's bytes; return every frame body completed by it.

        Raises :class:`FrameError` on bad magic or an oversize length
        claim; the caller must treat the stream as dead afterwards.
        """
        self._buffer.extend(data)
        frames: list[bytes] = []
        while True:
            if len(self._buffer) < HEADER_SIZE:
                break
            if self._buffer[: len(MAGIC)] != MAGIC:
                raise FrameError(
                    f"bad frame magic {bytes(self._buffer[:len(MAGIC)])!r}"
                )
            (length,) = struct.unpack_from(">I", self._buffer, len(MAGIC))
            if length > self.max_frame_bytes:
                raise FrameError(
                    f"frame claims {length} bytes, limit {self.max_frame_bytes}"
                )
            if len(self._buffer) < HEADER_SIZE + length:
                break  # truncated: wait for more bytes
            frames.append(bytes(self._buffer[HEADER_SIZE : HEADER_SIZE + length]))
            del self._buffer[: HEADER_SIZE + length]
            self.frames_decoded += 1
        return frames
