"""The asyncio TCP transport: real sockets under the protocol stack.

One :class:`AsyncioTransport` serves one OS process. It listens on the
process's own topology address and keeps one outbound link per peer:

* **framing** — every datagram is one length-prefixed frame
  (:mod:`repro.net.framing`) whose body is an addressed, wire-encoded
  payload (:mod:`repro.net.wire`);
* **reconnect** — outbound links dial lazily and redial on failure with
  capped exponential backoff; the frame being sent when a link dies is
  retried on the new connection (no reorder, at-least-once — protocol
  layers dedup);
* **backpressure** — each link owns a bounded send queue; the writer task
  awaits ``drain()`` so a slow peer backs the queue up, and when the queue
  is full the *newest* frame is dropped and counted. Dropping (rather than
  blocking the single-threaded protocol loop) is exactly the wire's §2.2
  contract: loss is allowed, retransmission is the protocol's job;
* **hardening** — inbound streams that desynchronise, claim oversize
  frames, or carry undecodable datagrams are dropped at the frame layer
  with a counter; a Byzantine peer cannot crash the reader.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from repro.net.faults import NetFaultInjector
from repro.net.framing import DEFAULT_MAX_FRAME, FrameDecoder, FrameError, encode_frame
from repro.net.transport import Transport
from repro.net.wire import WireCodecError, decode_datagram, encode_datagram

#: Reconnect backoff: BASE * 2^attempt, capped.
RECONNECT_BASE = 0.05
RECONNECT_CAP = 2.0


class _PeerLink:
    """One outbound connection: bounded queue + reconnecting writer task."""

    def __init__(
        self, transport: "AsyncioTransport", pid: str, host: str, port: int
    ) -> None:
        self.transport = transport
        self.pid = pid
        self.host = host
        self.port = port
        self.queue: asyncio.Queue[bytes] = asyncio.Queue(
            maxsize=transport.queue_limit
        )
        self.connected = asyncio.Event()
        self.writer: asyncio.StreamWriter | None = None
        self._ever_connected = False
        self.task = transport.loop.create_task(self._run(), name=f"link:{pid}")

    async def _connect(self) -> asyncio.StreamWriter:
        attempt = 0
        while True:
            try:
                _reader, writer = await asyncio.open_connection(self.host, self.port)
                if self._ever_connected:
                    self.transport.stats["reconnects"] += 1
                self._ever_connected = True
                self.connected.set()
                return writer
            except OSError:
                self.connected.clear()
                delay = min(RECONNECT_BASE * (2**attempt), RECONNECT_CAP)
                attempt += 1
                await asyncio.sleep(delay)

    async def _run(self) -> None:
        frame: bytes | None = None
        try:
            while True:
                # Dial eagerly — the readiness barrier (ensure_links) waits
                # on the connection, not on the first frame.
                if self.writer is None:
                    self.writer = await self._connect()
                if frame is None:
                    frame = await self.queue.get()
                try:
                    self.writer.write(frame)
                    await self.writer.drain()
                except (OSError, ConnectionError):
                    # Link died mid-frame: redial and retry this frame.
                    self._drop_writer()
                    continue
                self.transport.stats["frames_sent"] += 1
                self.transport.stats["bytes_sent"] += len(frame)
                frame = None
        except asyncio.CancelledError:
            self._drop_writer()
            raise

    def _drop_writer(self) -> None:
        self.connected.clear()
        if self.writer is not None:
            try:
                self.writer.close()
            except Exception:  # noqa: BLE001 - already dead
                pass
            self.writer = None

    def enqueue(self, frame: bytes) -> bool:
        try:
            self.queue.put_nowait(frame)
            return True
        except asyncio.QueueFull:
            return False


class AsyncioTransport(Transport):
    """Length-prefixed GIOP/SMIOP traffic over asyncio TCP streams."""

    def __init__(
        self,
        own_pid: str,
        address_book: dict[str, tuple[str, int]],
        loop: asyncio.AbstractEventLoop,
        on_deliver: Callable[[str, Any], None],
        faults: NetFaultInjector | None = None,
        max_frame_bytes: int = DEFAULT_MAX_FRAME,
        queue_limit: int = 1024,
    ) -> None:
        self.own_pid = own_pid
        self.address_book = dict(address_book)
        self.loop = loop
        self.on_deliver = on_deliver
        self.faults = faults
        self.max_frame_bytes = max_frame_bytes
        self.queue_limit = queue_limit
        self._links: dict[str, _PeerLink] = {}
        self._server: asyncio.base_events.Server | None = None
        self._reader_tasks: set[asyncio.Task] = set()
        self.stats: dict[str, int] = {
            "frames_sent": 0,
            "frames_received": 0,
            "bytes_sent": 0,
            "bytes_received": 0,
            "sends_dropped_queue_full": 0,
            "sends_dropped_unknown_peer": 0,
            "sends_dropped_fault": 0,
            "recv_dropped_bad_frame": 0,
            "recv_dropped_misrouted": 0,
            "reconnects": 0,
        }

    # -- server side --------------------------------------------------------

    async def start(self) -> None:
        host, port = self.address_book[self.own_pid]
        self._server = await asyncio.start_server(self._serve_peer, host, port)

    async def _serve_peer(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._reader_tasks.add(task)
            task.add_done_callback(self._reader_tasks.discard)
        decoder = FrameDecoder(max_frame_bytes=self.max_frame_bytes)
        try:
            while True:
                data = await reader.read(64 * 1024)
                if not data:
                    return
                self.stats["bytes_received"] += len(data)
                try:
                    frames = decoder.feed(data)
                except FrameError:
                    # Desynchronised or hostile stream: kill the connection;
                    # the peer's link will redial with a fresh decoder.
                    self.stats["recv_dropped_bad_frame"] += 1
                    return
                for body in frames:
                    self._handle_frame(body)
        except (OSError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - already dead
                pass

    def _handle_frame(self, body: bytes) -> None:
        try:
            src, dst, payload = decode_datagram(body)
        except WireCodecError:
            self.stats["recv_dropped_bad_frame"] += 1
            return
        if dst != self.own_pid:
            self.stats["recv_dropped_misrouted"] += 1
            return
        self.stats["frames_received"] += 1
        self.on_deliver(src, payload)

    # -- client side --------------------------------------------------------

    def _link_for(self, dst: str) -> _PeerLink | None:
        link = self._links.get(dst)
        if link is None:
            address = self.address_book.get(dst)
            if address is None:
                return None
            link = _PeerLink(self, dst, address[0], address[1])
            self._links[dst] = link
        return link

    def transmit(
        self, src: str, dst: str, payload: Any, size: int, extra_delay: float
    ) -> None:
        frame = encode_frame(
            encode_datagram(src, dst, payload), max_frame_bytes=self.max_frame_bytes
        )
        delay = extra_delay
        if self.faults is not None:
            verdict, fault_delay = self.faults.verdict(src, dst)
            if verdict == "drop":
                self.stats["sends_dropped_fault"] += 1
                return
            delay += fault_delay
        if delay > 0:
            self.loop.call_later(delay, self._enqueue, dst, frame)
        else:
            self._enqueue(dst, frame)

    def _enqueue(self, dst: str, frame: bytes) -> None:
        link = self._link_for(dst)
        if link is None:
            # Receiver unknown (e.g. expelled and deregistered): drop
            # silently, as IP would.
            self.stats["sends_dropped_unknown_peer"] += 1
            return
        if not link.enqueue(frame):
            self.stats["sends_dropped_queue_full"] += 1

    # -- readiness & shutdown ----------------------------------------------

    async def ensure_links(self, peers: list[str], timeout: float = 30.0) -> None:
        """Dial every peer and wait until all links are up (cluster barrier).

        Raises ``TimeoutError`` if any peer stays unreachable — the
        launcher treats that as a failed deployment, not a protocol fault.
        """
        links = [self._link_for(pid) for pid in peers if pid != self.own_pid]
        waits = [link.connected.wait() for link in links if link is not None]
        if waits:
            await asyncio.wait_for(asyncio.gather(*waits), timeout=timeout)

    async def ensure_quorum(
        self, peers: list[str], minimum: int, timeout: float = 30.0
    ) -> None:
        """Dial every peer; wait until at least ``minimum`` links are up.

        The client-side barrier: a voter needs 2f+1 live replicas, not all
        3f+1 — a cluster already missing a (tolerated) crashed node must
        still accept new clients.
        """
        links = [
            link
            for pid in peers
            if pid != self.own_pid
            if (link := self._link_for(pid)) is not None
        ]
        minimum = min(minimum, len(links))

        async def poll() -> None:
            while sum(1 for link in links if link.connected.is_set()) < minimum:
                await asyncio.sleep(0.02)

        await asyncio.wait_for(poll(), timeout=timeout)

    @property
    def links_up(self) -> int:
        return sum(1 for link in self._links.values() if link.connected.is_set())

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, cancel links and readers."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        tasks = [link.task for link in self._links.values()]
        tasks.extend(self._reader_tasks)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._links.clear()

    def close(self) -> None:
        """Sync best-effort close (Transport interface); prefer ``stop``."""
        if self.loop.is_running():
            self.loop.create_task(self.stop())
