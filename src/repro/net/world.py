"""A Network-compatible world hosting ONE process over a real transport.

In the simulator, one :class:`~repro.sim.network.Network` owns every
process. In the wire backend each OS process owns exactly one protocol
element, and the "network" it is attached to is this facade: the same
attribute surface a :class:`~repro.sim.process.Process` touches
(``scheduler``, ``send``, ``multicast``, ``telemetry``, ``trace``,
``stats``) but with sends routed to a :class:`Transport` and timers on the
wall clock. Multicast is fan-out unicast over the topology's group map —
IP multicast loopback semantics included: the sender receives its own
copy iff it is a member, which the BFT layer relies on.
"""

from __future__ import annotations

import logging
from typing import Any

from repro.net.clock import RealTimeScheduler
from repro.net.transport import Transport
from repro.obs.telemetry import NOOP_TELEMETRY, Telemetry
from repro.sim.network import TrafficStats, payload_size
from repro.sim.process import Process, ProcessId
from repro.sim.trace import TraceRecorder


class NetWorld:
    """One process's view of the cluster, over a real wire."""

    def __init__(
        self,
        scheduler: RealTimeScheduler,
        transport: Transport,
        groups: dict[str, tuple[str, ...]],
        telemetry: bool = False,
    ) -> None:
        self.scheduler = scheduler
        self.transport = transport
        self.groups = dict(groups)
        self.trace = TraceRecorder()
        self.trace.enabled = False
        self.stats = TrafficStats()
        self.telemetry: Telemetry = NOOP_TELEMETRY
        if telemetry:
            self.telemetry = Telemetry(enabled=True, clock=lambda: scheduler.now)
        self.hosted: Process | None = None
        self.delivery_errors = 0

    # -- wiring -------------------------------------------------------------

    def host(self, process: Process) -> None:
        """Attach the one process this OS process runs."""
        self.hosted = process
        process.attach(self)  # type: ignore[arg-type] - duck-typed Network

    @property
    def now(self) -> float:
        return self.scheduler.now

    # -- transmission -------------------------------------------------------

    def send(self, src: ProcessId, dst: ProcessId, payload: Any) -> None:
        self.stats.messages_sent += 1
        size = payload_size(payload)
        self.stats.bytes_sent += size
        if self.hosted is not None and dst == self.hosted.pid:
            # Self-send: stay off the wire, but keep the asynchrony — the
            # simulator never delivers re-entrantly and protocol code
            # (quorum counting mid-handler) relies on that.
            self.scheduler.schedule(0.0, lambda: self.deliver(src, payload))
            return
        self.transport.transmit(src, dst, payload, size, 0.0)

    def multicast(self, src: ProcessId, group_addr: str, payload: Any) -> None:
        members = self.groups.get(group_addr)
        if members is None:
            raise KeyError(f"unknown multicast address {group_addr!r}")
        self.stats.multicasts_sent += 1
        for member in sorted(members):
            self.send(src, member, payload)

    # -- inbound ------------------------------------------------------------

    def deliver(self, src: ProcessId, payload: Any) -> None:
        """Hand one decoded payload to the hosted process.

        A malformed or Byzantine payload must never kill the reader task:
        protocol layers already treat garbage as evidence, so anything
        that still escapes is counted and dropped.
        """
        if self.hosted is None:
            return
        self.stats.messages_delivered += 1
        try:
            self.hosted.deliver(src, payload)
        except Exception:  # noqa: BLE001 - wire garbage must not stop the node
            self.delivery_errors += 1
            logging.getLogger("repro.net").exception(
                "delivery from %s raised (payload %s)", src, type(payload).__name__
            )

    # -- simulator-surface stubs -------------------------------------------

    def run(self, **kwargs: Any) -> None:
        raise RuntimeError(
            "NetWorld has no run(): the asyncio loop drives a real node. "
            "Use ItdosClient.async_invoke / await instead of the sync stub."
        )

    def enable_telemetry(self) -> Telemetry:
        if not self.telemetry.enabled:
            self.telemetry = Telemetry(
                enabled=True, clock=lambda: self.scheduler.now
            )
        return self.telemetry
