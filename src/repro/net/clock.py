"""Wall-clock scheduler: the simulator's timer API over an asyncio loop.

Protocol objects arm timers through
:meth:`~repro.sim.process.Process.set_timer`, which talks to
``network.scheduler`` — a :class:`~repro.sim.scheduler.Scheduler` in the
simulation. This class presents the same surface (``now``, ``schedule``,
``cancel``, ``pending``) but fires callbacks on real elapsed time via
``loop.call_later``, so the exact same replica/voter/GM code runs
unmodified in a real process.

Handles are the simulator's :class:`TimerHandle` dataclass — processes
stash them in sets and hand them back for cancellation, so identity must
survive the trip.
"""

from __future__ import annotations

import asyncio
from typing import Callable

from repro.sim.scheduler import TimerHandle


class RealTimeScheduler:
    """Scheduler facade over one asyncio event loop."""

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self.loop = loop
        self._t0 = loop.time()
        self._seq = 0
        self._live: dict[tuple[float, int], asyncio.TimerHandle] = {}
        self._events_executed = 0

    @property
    def now(self) -> float:
        """Seconds since this process's world began (monotonic)."""
        return self.loop.time() - self._t0

    @property
    def events_executed(self) -> int:
        return self._events_executed

    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        handle = TimerHandle(time=self.now + delay, seq=self._seq)
        self._seq += 1
        key = (handle.time, handle.seq)

        def fire() -> None:
            self._live.pop(key, None)
            self._events_executed += 1
            callback()

        self._live[key] = self.loop.call_later(delay, fire)
        return handle

    def schedule_at(self, time: float, callback: Callable[[], None]) -> TimerHandle:
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        return self.schedule(time - self.now, callback)

    def cancel(self, handle: TimerHandle) -> bool:
        timer = self._live.pop((handle.time, handle.seq), None)
        if timer is None:
            return False
        timer.cancel()
        return True

    def pending(self) -> int:
        return len(self._live)

    def cancel_all(self) -> int:
        """Shutdown path: cancel every armed timer so the loop can drain."""
        cancelled = 0
        for timer in self._live.values():
            timer.cancel()
            cancelled += 1
        self._live.clear()
        return cancelled
