"""The transport seam between protocol objects and a delivery mechanism.

:class:`~repro.sim.network.Network` decides *whether* a message survives
(partitions, loss, filters, the chaos adversary) and *what* it costs
(latency model); the :class:`Transport` decides *how* a surviving message
reaches the destination process. Factoring the seam this way keeps every
fault/latency model in the deterministic oracle while letting a second
implementation put the same payloads on a real wire:

* :class:`SimTransport` — schedules an in-memory delivery on the
  simulation's discrete-event scheduler (the historical behaviour of
  ``Network._deliver_later``, extracted verbatim);
* :class:`~repro.net.tcp.AsyncioTransport` — frames the payload through
  :mod:`repro.net.wire` and writes it to a TCP peer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.network import Network
    from repro.sim.process import ProcessId


class Transport(ABC):
    """Delivery mechanism for payloads that passed the network's fault gates."""

    @abstractmethod
    def transmit(
        self,
        src: "ProcessId",
        dst: "ProcessId",
        payload: Any,
        size: int,
        extra_delay: float,
    ) -> None:
        """Carry one payload toward ``dst``. Loss after this point is the
        transport's own (modelled or physical) behaviour."""

    def close(self) -> None:
        """Release transport resources (sockets, queues). Default: nothing."""


class SimTransport(Transport):
    """In-memory delivery on the simulation scheduler."""

    def __init__(self, network: "Network") -> None:
        self.network = network

    def transmit(
        self,
        src: "ProcessId",
        dst: "ProcessId",
        payload: Any,
        size: int,
        extra_delay: float,
    ) -> None:
        network = self.network
        if network.check_wire:
            # Oracle duty: a payload that cannot cross a *real* process
            # boundary must fail here, in the deterministic backend, not
            # as a marshalling crash on a production wire.
            from repro.net.wire import assert_wire_encodable

            assert_wire_encodable(payload)
        delay = network.config.latency.sample(network.rng)
        delay += size * network.config.per_byte_delay + extra_delay

        def do_deliver() -> None:
            # Receiver may have been removed or crashed in the interim.
            if dst not in network.processes:
                network.stats.messages_dropped += 1
                if network._m_dropped is not None:
                    network._m_dropped.labels(reason="late").inc()
                return
            network.stats.messages_delivered += 1
            network.trace.record(network.scheduler.now, "deliver", src, dst, payload)
            if network._m_delivered is not None:
                network._m_delivered.inc()
                # Feed the phi-accrual timeliness estimator: every delivery
                # is one inter-arrival observation for its sender.
                network.telemetry.detect.observe_arrival(src, network.scheduler.now)
            network.processes[dst].deliver(src, payload)
            if network.on_deliver is not None:
                network.on_deliver(src, dst, payload)

        network.scheduler.schedule(delay, do_deliver)
