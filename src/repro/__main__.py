"""Command-line demo runner: ``python -m repro [demo]``.

Runs one of the example scenarios without needing the examples/ directory,
so an installed package can demonstrate itself.
"""

from __future__ import annotations

import sys


def demo_quickstart() -> None:
    """Singleton client, replicated heterogeneous calculator."""
    from repro.workloads.scenarios import build_calc_system

    system = build_calc_system(f=1, seed=42)
    client = system.add_client("demo-client")
    stub = client.stub(system.ref("calc", b"calc"))
    print("replicated add(2, 3)   =", stub.add(2.0, 3.0))
    print("replicated mean([...]) =", stub.mean([1.0, 2.0, 3.0, 4.0]))
    print("invocations ordered by PBFT across",
          system.directory.domain("calc").n, "heterogeneous elements;")
    print("messages on the wire   =", system.network.stats.messages_sent)


def demo_intrusion() -> None:
    """Mask, detect, and expel a compromised replica."""
    from repro.itdos.bootstrap import ItdosSystem
    from repro.itdos.faults import LyingElement
    from repro.workloads.scenarios import CalculatorServant, standard_repository

    system = ItdosSystem(seed=5, repository=standard_repository())
    system.add_server_domain(
        "calc", f=1,
        servants=lambda element: {b"calc": CalculatorServant()},
        byzantine={2: LyingElement},
    )
    client = system.add_client("demo-client")
    stub = client.stub(system.ref("calc", b"calc"))
    print("compromised element calc-e2 corrupts every reply it sends")
    print("add(2, 3) =", stub.add(2.0, 3.0), " <- still correct (voted)")
    system.settle(3.0)
    expelled = sorted(system.gm_elements[0].state.expelled)
    print("Group Manager expelled:", expelled)
    print("service after expulsion: add(10, 20) =", stub.add(10.0, 20.0))


def demo_voting() -> None:
    """Show why byte-by-byte voting fails under heterogeneity."""
    from repro.baselines.byte_voter import byte_majority_vote
    from repro.giop.messages import encode_reply
    from repro.giop.platforms import assign_heterogeneous
    from repro.workloads.scenarios import standard_repository

    repo = standard_repository()
    value = 1.0 / 3.0 * 1e6
    ballots = []
    for index, platform in enumerate(assign_heterogeneous(4)):
        wire = encode_reply(
            repo, "Calculator", "add", request_id=1,
            result=platform.perturb_float(value),
            byte_order=platform.byte_order,
        )
        ballots.append((f"e{index}", wire))
        print(f"  e{index} ({platform.name:20s}): ...{wire[-8:].hex()}")
    decision = byte_majority_vote(ballots, 2)
    print("byte-level f+1 agreement:", decision.decided,
          " (ITDOS votes unmarshalled values instead)")


DEMOS = {
    "quickstart": demo_quickstart,
    "intrusion": demo_intrusion,
    "voting": demo_voting,
}


def main(argv: list[str]) -> int:
    name = argv[0] if argv else "quickstart"
    demo = DEMOS.get(name)
    if demo is None:
        print(f"unknown demo {name!r}; available: {', '.join(sorted(DEMOS))}")
        return 2
    print(f"=== repro demo: {name} ===")
    demo()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
