"""Command-line demo runner: ``python -m repro [demo]``.

Runs one of the example scenarios without needing the examples/ directory,
so an installed package can demonstrate itself.
"""

from __future__ import annotations

import sys


def demo_quickstart() -> None:
    """Singleton client, replicated heterogeneous calculator."""
    from repro.workloads.scenarios import build_calc_system

    system = build_calc_system(f=1, seed=42)
    client = system.add_client("demo-client")
    stub = client.stub(system.ref("calc", b"calc"))
    print("replicated add(2, 3)   =", stub.add(2.0, 3.0))
    print("replicated mean([...]) =", stub.mean([1.0, 2.0, 3.0, 4.0]))
    print("invocations ordered by PBFT across",
          system.directory.domain("calc").n, "heterogeneous elements;")
    print("messages on the wire   =", system.network.stats.messages_sent)


def demo_intrusion() -> None:
    """Mask, detect, and expel a compromised replica."""
    from repro.itdos.bootstrap import ItdosSystem
    from repro.itdos.faults import LyingElement
    from repro.workloads.scenarios import CalculatorServant, standard_repository

    system = ItdosSystem(seed=5, repository=standard_repository())
    system.add_server_domain(
        "calc", f=1,
        servants=lambda element: {b"calc": CalculatorServant()},
        byzantine={2: LyingElement},
    )
    client = system.add_client("demo-client")
    stub = client.stub(system.ref("calc", b"calc"))
    print("compromised element calc-e2 corrupts every reply it sends")
    print("add(2, 3) =", stub.add(2.0, 3.0), " <- still correct (voted)")
    system.settle(3.0)
    expelled = sorted(system.gm_elements[0].state.expelled)
    print("Group Manager expelled:", expelled)
    print("service after expulsion: add(10, 20) =", stub.add(10.0, 20.0))


def demo_voting() -> None:
    """Show why byte-by-byte voting fails under heterogeneity."""
    from repro.baselines.byte_voter import byte_majority_vote
    from repro.giop.messages import encode_reply
    from repro.giop.platforms import assign_heterogeneous
    from repro.workloads.scenarios import standard_repository

    repo = standard_repository()
    value = 1.0 / 3.0 * 1e6
    ballots = []
    for index, platform in enumerate(assign_heterogeneous(4)):
        wire = encode_reply(
            repo, "Calculator", "add", request_id=1,
            result=platform.perturb_float(value),
            byte_order=platform.byte_order,
        )
        ballots.append((f"e{index}", wire))
        print(f"  e{index} ({platform.name:20s}): ...{wire[-8:].hex()}")
    decision = byte_majority_vote(ballots, 2)
    print("byte-level f+1 agreement:", decision.decided,
          " (ITDOS votes unmarshalled values instead)")


def _traced_calc_invocation():
    """A calc system with telemetry on, after one traced ``add(2, 3)``."""
    from repro.workloads.scenarios import build_calc_system

    system = build_calc_system(f=1, seed=42, telemetry=True)
    client = system.add_client("demo-client")
    stub = client.stub(system.ref("calc", b"calc"))
    result = stub.add(2.0, 3.0)
    return system, result


def _traced_intrusion_drill():
    """A calc system with a lying replica, run until the GM expels it."""
    from repro.itdos.bootstrap import ItdosSystem
    from repro.itdos.faults import LyingElement
    from repro.workloads.scenarios import CalculatorServant, standard_repository

    system = ItdosSystem(seed=5, repository=standard_repository(), telemetry=True)
    system.add_server_domain(
        "calc", f=1,
        servants=lambda element: {b"calc": CalculatorServant()},
        byzantine={2: LyingElement},
    )
    client = system.add_client("demo-client")
    stub = client.stub(system.ref("calc", b"calc"))
    result = stub.add(2.0, 3.0)
    system.settle(3.0)
    return system, result


def _recovery_drill():
    """Queue-mode calc domain: detect → expel → repair → readmit → recover.

    Returns ``(system, liar, recovered, result)`` where ``recovered`` is
    the recovery outcome and ``result`` a post-recovery voted invocation.
    """
    from repro.itdos.bootstrap import ItdosSystem
    from repro.itdos.faults import LyingElement
    from repro.workloads.scenarios import CalculatorServant, standard_repository

    system = ItdosSystem(seed=7, repository=standard_repository(), telemetry=True)
    system.add_server_domain(
        "calc", f=1,
        servants=lambda element: {b"calc": CalculatorServant()},
        byzantine={2: LyingElement},
    )
    client = system.add_client("demo-client")
    stub = client.stub(system.ref("calc", b"calc"))
    stub.add(2.0, 3.0)
    system.settle(3.0)  # voter detection, change_request, expulsion
    liar = system.elements["calc-e2"]
    liar.repaired = True
    for i in range(4):  # traffic the expelled element misses
        stub.add(float(i), 1.0)
    done: list[bool] = []
    liar.recover_membership(on_complete=done.append)
    system.run_until(lambda: bool(done))
    result = stub.add(10.0, 20.0)
    system.settle(1.0)
    return system, liar, done[0], result


def _json_path(args: list[str]) -> tuple[str | None, list[str]]:
    """Pop ``--json PATH`` out of the argument list."""
    if "--json" in args:
        at = args.index("--json")
        if at + 1 >= len(args):
            raise ValueError("--json requires a file path")
        path = args[at + 1]
        return path, args[:at] + args[at + 2 :]
    return None, args


def _from_node_dir(args: list[str]) -> tuple[str | None, list[str]]:
    """Pop ``--from-node DIR`` out of the argument list."""
    if "--from-node" in args:
        at = args.index("--from-node")
        if at + 1 >= len(args):
            raise ValueError("--from-node requires a directory")
        path = args[at + 1]
        return path, args[:at] + args[at + 2 :]
    return None, args


def _trace_from_node(directory: str, json_path: str | None) -> int:
    """Offline mode: fold per-process span exports left by ``repro serve``."""
    from repro.obs import (
        fold_node_records,
        read_node_records,
        tracer_from_records,
        write_jsonl,
    )

    try:
        by_node = read_node_records(directory)
    except OSError as exc:
        print(f"trace: cannot read {directory}: {exc}")
        return 1
    if not by_node:
        print(f"trace: no *.telemetry.jsonl files in {directory} "
              "(run the cluster with telemetry enabled)")
        return 1
    for node in sorted(by_node):
        tracer = tracer_from_records(by_node[node])
        ids = tracer.trace_ids()
        print(f"== {node}: {len(tracer)} spans in {len(ids)} traces ==")
        for trace_id in ids:
            print(tracer.render(trace_id))
            print()
    if json_path is not None:
        try:
            lines = write_jsonl(json_path, fold_node_records(by_node))
        except OSError as exc:
            print(f"trace: cannot write {json_path}: {exc}")
            return 1
        print(f"wrote {lines} node-tagged records to {json_path}")
    return 0


def _metrics_from_node(directory: str, json_path: str | None) -> int:
    """Offline mode: one combined metrics table across all cluster nodes."""
    from repro.obs import (
        aggregate_by_shard,
        fold_metric_records,
        fold_node_records,
        read_node_records,
        render_metrics_table,
        write_jsonl,
    )

    try:
        by_node = read_node_records(directory)
    except OSError as exc:
        print(f"metrics: cannot read {directory}: {exc}")
        return 1
    if not by_node:
        print(f"metrics: no *.telemetry.jsonl files in {directory} "
              "(run the cluster with telemetry enabled)")
        return 1
    print(f"{len(by_node)} nodes: {', '.join(sorted(by_node))}")
    print()
    print(render_metrics_table(fold_metric_records(by_node)))
    # Sharded topologies stamp a `shard` label on every node's metrics;
    # the aggregate view sums each shard's traffic and the cluster total.
    shards = {
        (record.get("labels") or {}).get("shard")
        for records in by_node.values()
        for record in records
        if record.get("record") == "metric"
    }
    if shards - {None}:
        print()
        print("== per-shard / cluster aggregates ==")
        print(render_metrics_table(aggregate_by_shard(by_node)))
    if json_path is not None:
        try:
            lines = write_jsonl(json_path, fold_node_records(by_node))
        except OSError as exc:
            print(f"metrics: cannot write {json_path}: {exc}")
            return 1
        print(f"\nwrote {lines} node-tagged records to {json_path}")
    return 0


def cmd_trace(args: list[str]) -> int:
    """Run a traced invocation and print its span tree."""
    from repro.obs import span_records, write_jsonl

    try:
        json_path, args = _json_path(args)
        from_dir, args = _from_node_dir(args)
    except ValueError as exc:
        print(f"trace: {exc}")
        return 2
    if from_dir is not None:
        if args:
            print(f"trace: unexpected arguments {args!r} with --from-node")
            return 2
        return _trace_from_node(from_dir, json_path)
    scenario = "calc"
    if args and args[0] in ("calc", "recovery"):
        scenario, args = args[0], args[1:]
    if args:
        print(f"trace: unexpected arguments {args!r} "
              "(only [calc|recovery], --from-node DIR, --json PATH)")
        return 2
    if scenario == "recovery":
        system, _liar, _recovered, result = _recovery_drill()
        print(f"post-recovery add(10, 20) = {result}")
        only = "recovery."
    else:
        system, result = _traced_calc_invocation()
        print(f"traced add(2, 3) = {result}")
        only = None
    tracer = system.telemetry.tracer
    for trace_id in tracer.trace_ids():
        rendered = tracer.render(trace_id)
        if only is not None and only not in rendered:
            continue
        print()
        print(rendered)
    if json_path is not None:
        try:
            lines = write_jsonl(json_path, span_records(tracer))
        except OSError as exc:
            print(f"trace: cannot write {json_path}: {exc}")
            return 1
        print(f"\nwrote {lines} span records to {json_path}")
    return 0


def cmd_metrics(args: list[str]) -> int:
    """Run the intrusion drill and print metrics + the health board."""
    from repro.obs import render_metrics_table, telemetry_records, write_jsonl

    try:
        json_path, args = _json_path(args)
        from_dir, args = _from_node_dir(args)
    except ValueError as exc:
        print(f"metrics: {exc}")
        return 2
    if from_dir is not None:
        if args:
            print(f"metrics: unexpected arguments {args!r} with --from-node")
            return 2
        return _metrics_from_node(from_dir, json_path)
    if args:
        print(f"metrics: unexpected arguments {args!r} "
              "(only --from-node DIR, --json PATH)")
        return 2
    system, result = _traced_intrusion_drill()
    t = system.telemetry
    print(f"voted add(2, 3) = {result}  (calc-e2 lies in every reply)")
    print()
    print(render_metrics_table(t.registry))
    print()
    print(t.health.render())
    if json_path is not None:
        try:
            lines = write_jsonl(json_path, telemetry_records(t))
        except OSError as exc:
            print(f"metrics: cannot write {json_path}: {exc}")
            return 1
        print(f"\nwrote {lines} telemetry records to {json_path}")
    return 0


def cmd_recover(args: list[str]) -> int:
    """Run the detect → expel → repair → readmit → state-transfer drill."""
    from repro.obs import telemetry_records, write_jsonl

    try:
        json_path, args = _json_path(args)
    except ValueError as exc:
        print(f"recover: {exc}")
        return 2
    if args:
        print(f"recover: unexpected arguments {args!r} (only --json PATH)")
        return 2
    system, liar, recovered, result = _recovery_drill()
    t = system.telemetry
    gm = system.gm_elements[0]
    print(f"expelled then readmitted: {list(gm.readmissions)}")
    print(f"recovery outcome        : {'recovered' if recovered else 'gave up'} "
          f"(verdict {liar.recovery.last_verdict!r}, "
          f"{liar.recovery.transfers_completed} transfer(s), "
          f"{liar.recovery.bytes_transferred} bytes)")
    print(f"membership key epoch    : {gm.state.key_epoch}")
    print(f"post-recovery add(10,20): {result}  "
          f"<- {liar.pid} votes with the majority again")
    tracer = t.tracer
    for trace_id in tracer.trace_ids():
        rendered = tracer.render(trace_id)
        if "recovery." not in rendered:
            continue
        print()
        print(rendered)
    print()
    print(t.health.render())
    if json_path is not None:
        try:
            lines = write_jsonl(json_path, telemetry_records(t))
        except OSError as exc:
            print(f"recover: cannot write {json_path}: {exc}")
            return 1
        print(f"\nwrote {lines} telemetry records to {json_path}")
    return 0


def cmd_chaos(args: list[str]) -> int:
    """Sweep the Byzantine schedule fuzzer and fail on any violation.

    ``python -m repro chaos [--smoke|--full] [--seed N] [--seeds K]
    [--intensity X] [--shrink] [--json PATH]``
    """
    import json as _json

    from repro.chaos import ScheduleRunner, scenario_matrix

    try:
        json_path, args = _json_path(args)
    except ValueError as exc:
        print(f"chaos: {exc}")
        return 2
    full = False
    seeds: tuple[int, ...] | None = None
    seed_count: int | None = None
    intensity = 1.0
    shrink = False
    it = iter(args)
    try:
        for arg in it:
            if arg == "--smoke":
                full = False
            elif arg == "--full":
                full = True
            elif arg == "--seed":
                seeds = (int(next(it)),)
            elif arg == "--seeds":
                seed_count = int(next(it))
            elif arg == "--intensity":
                intensity = float(next(it))
            elif arg == "--shrink":
                shrink = True
            else:
                print(f"chaos: unknown argument {arg!r}")
                return 2
    except (StopIteration, ValueError):
        print("chaos: --seed/--seeds/--intensity need a numeric value")
        return 2
    if seeds is None:
        seeds = tuple(range(seed_count if seed_count is not None else 2))
    runner = ScheduleRunner(
        scenarios=scenario_matrix(full=full),
        seeds=seeds,
        intensity=intensity,
        shrink=shrink,
        log=print,
    )
    sweep = runner.run()
    faults = sum(sum(r.faults_applied.values()) for r in sweep.results)
    print(
        f"chaos: {len(sweep.results)} cells, {faults} faults injected, "
        f"{len(sweep.failures)} violation(s)"
    )
    if sweep.shrunk is not None:
        print(f"chaos: shrunk first failure to {len(sweep.shrunk)} fault(s):")
        for event in sweep.shrunk:
            print(f"  #{event.index} t={event.time:.4f} {event.kind} "
                  f"{event.src}->{event.dst} {event.detail}")
    if json_path is not None:
        try:
            with open(json_path, "w", encoding="utf-8") as handle:
                _json.dump(sweep.to_dict(), handle, indent=2)
        except OSError as exc:
            print(f"chaos: cannot write {json_path}: {exc}")
            return 1
        print(f"chaos: wrote sweep report to {json_path}")
    return 0 if sweep.ok else 1


def cmd_detect(args: list[str]) -> int:
    """Run one chaos cell with the detector on; print truth vs verdict.

    ``python -m repro detect [--seed N] [--intensity X] [--requests K]
    [--benign] [--json PATH]``

    Fully deterministic in (seed, intensity, requests): same arguments,
    same fault schedule, same evidence, same verdict. ``--benign`` strips
    every Byzantine fault (honest-under-stress control cell); the command
    fails if any honest element is accused.
    """
    import json as _json

    from repro.chaos import ScheduleRunner
    from repro.chaos.schedule import Scenario

    try:
        json_path, args = _json_path(args)
    except ValueError as exc:
        print(f"detect: {exc}")
        return 2
    seed = 0
    intensity = 1.0
    requests = 6
    benign = False
    it = iter(args)
    try:
        for arg in it:
            if arg == "--seed":
                seed = int(next(it))
            elif arg == "--intensity":
                intensity = float(next(it))
            elif arg == "--requests":
                requests = int(next(it))
            elif arg == "--benign":
                benign = True
            else:
                print(f"detect: unknown argument {arg!r}")
                return 2
    except (StopIteration, ValueError):
        print("detect: --seed/--intensity/--requests need a numeric value")
        return 2
    runner = ScheduleRunner(
        scenarios=(Scenario(),),
        seeds=(seed,),
        requests=requests,
        intensity=intensity,
        telemetry=True,
        fault_kinds="benign" if benign else "all",
    )
    result = runner.run_one(Scenario(), seed)
    verdict = result.detection or {}
    t = runner.last_telemetry
    print(f"chaos cell {result.scenario.label} seed={seed} "
          f"intensity={intensity} ({'benign faults only' if benign else 'full fault mix'})")
    print(f"  faults applied : {result.faults_applied}")
    print(f"  true faulty    : {result.true_faulty or '(none)'}")
    print(f"  active faulty  : {verdict.get('active_faulty') or '(none)'}")
    print(f"  accused        : {verdict.get('accused') or '(none)'}")
    print(f"  suspected      : {verdict.get('suspected') or '(none)'}")
    false_accusations = verdict.get("false_accusations", [])
    for pid, first in sorted(verdict.get("time_to_detect", {}).items()):
        print(f"  detected {pid} at t={first * 1000:.3f}ms")
    if t is not None:
        print()
        print(t.health.render())
        print()
        print(t.audit.render())
    if json_path is not None:
        try:
            with open(json_path, "w", encoding="utf-8") as handle:
                _json.dump(result.to_dict(), handle, indent=2)
        except OSError as exc:
            print(f"detect: cannot write {json_path}: {exc}")
            return 1
        print(f"\ndetect: wrote cell report to {json_path}")
    if false_accusations:
        print(f"\ndetect: FALSE ACCUSATION of honest element(s): "
              f"{false_accusations}")
        return 1
    if not verdict.get("audit_chain_ok", True):
        print(f"\ndetect: audit chain broken: {verdict.get('audit_chain_error')}")
        return 1
    return 0


def cmd_audit(args: list[str]) -> int:
    """Verify an audit log's hash chain and evidence signatures.

    ``python -m repro audit verify [--jsonl PATH] [--json PATH]``

    With ``--jsonl PATH`` the chain is re-verified offline from exported
    telemetry records (no key material needed). Without it, the intrusion
    drill runs live and the resulting log is checked end to end — chain
    digests plus every signed ballot against the system keyring.
    """
    import json as _json

    from repro.obs import telemetry_records, verify_chain, write_jsonl

    try:
        json_path, args = _json_path(args)
    except ValueError as exc:
        print(f"audit: {exc}")
        return 2
    jsonl_path: str | None = None
    if "--jsonl" in args:
        at = args.index("--jsonl")
        if at + 1 >= len(args):
            print("audit: --jsonl requires a file path")
            return 2
        jsonl_path = args[at + 1]
        args = args[:at] + args[at + 2 :]
    if args != ["verify"]:
        print("audit: usage: audit verify [--jsonl PATH] [--json PATH]")
        return 2

    if jsonl_path is not None:
        try:
            with open(jsonl_path, encoding="utf-8") as handle:
                records = [
                    _json.loads(line) for line in handle if line.strip()
                ]
        except (OSError, ValueError) as exc:
            print(f"audit: cannot read {jsonl_path}: {exc}")
            return 1
        entries = [r for r in records if r.get("record") == "audit_entry"]
        ok, error = verify_chain(entries)
        print(f"audit: {len(entries)} chained entr"
              f"{'y' if len(entries) == 1 else 'ies'} in {jsonl_path}")
        if ok:
            print("audit: hash chain VERIFIED")
            return 0
        print(f"audit: hash chain BROKEN — {error}")
        return 1

    system, result = _traced_intrusion_drill()
    t = system.telemetry
    print(f"voted add(2, 3) = {result}  (calc-e2 lies in every reply)")
    print()
    print(t.audit.render())
    print()
    ok, error = t.audit.verify()
    if not ok:
        print(f"audit: hash chain BROKEN — {error}")
        return 1
    print(f"audit: hash chain VERIFIED ({len(t.audit)} entries, "
          f"head {t.audit.head[:16]}…)")
    bad = t.audit.verify_signatures(system.directory.keyring.verify)
    if bad:
        print(f"audit: evidence signatures FAILED at entries {bad}")
        return 1
    ballots = sum(
        len(entry.evidence.get("ballots", [])) for entry in t.audit.entries
    )
    print(f"audit: evidence signatures VERIFIED ({ballots} signed ballot(s) "
          "re-checked against the keyring)")
    if json_path is not None:
        try:
            lines = write_jsonl(json_path, telemetry_records(t))
        except OSError as exc:
            print(f"audit: cannot write {json_path}: {exc}")
            return 1
        print(f"audit: wrote {lines} telemetry records to {json_path}")
    return 0


def _marshal_corpus():
    """(name, TypeCode, value) cells exercising each codec plan shape."""
    from repro.giop.typecodes import (
        TC_BOOLEAN,
        TC_DOUBLE,
        TC_STRING,
        TC_ULONG,
        SequenceType,
        StructType,
    )

    sample = StructType(
        "Sample", (("t", TC_DOUBLE), ("value", TC_DOUBLE), ("seq", TC_ULONG))
    )
    reading = StructType(
        "Reading",
        (
            ("ok", TC_BOOLEAN),
            ("label", TC_STRING),
            ("samples", SequenceType(sample)),
        ),
    )
    return [
        ("struct", sample, {"t": 0.25, "value": 1.5, "seq": 7}),
        ("seq<double>[256]", SequenceType(TC_DOUBLE), [float(i) for i in range(256)]),
        (
            "seq<struct>[64]",
            SequenceType(sample),
            [{"t": i * 0.5, "value": -i * 0.25, "seq": i} for i in range(64)],
        ),
        (
            "mixed nested",
            reading,
            {
                "ok": True,
                "label": "sensor-7",
                "samples": [
                    {"t": i * 0.5, "value": i * 1.25, "seq": i} for i in range(16)
                ],
            },
        ),
    ]


def cmd_bench(args: list[str]) -> int:
    """``bench marshal``: compiled-codec vs interpreted CDR timings."""
    import time

    from repro.giop.cdr import CdrDecoder, CdrEncoder
    from repro.giop.codec import (
        BUFFER_POOL,
        FastDecoder,
        FastEncoder,
        clear_codec_cache,
        codec_cache_stats,
        compile_codec,
    )
    from repro.obs import metric_records, render_metrics_table, write_jsonl
    from repro.obs.registry import MetricRegistry

    try:
        json_path, args = _json_path(args)
    except ValueError as exc:
        print(f"bench: {exc}")
        return 2
    if args != ["marshal"]:
        print("bench: usage: bench marshal [--json PATH]")
        return 2

    def rate(fn, min_time=0.1):
        fn()  # warm: compile + caches
        n = 1
        while True:
            start = time.perf_counter()
            for _ in range(n):
                fn()
            elapsed = time.perf_counter() - start
            if elapsed >= min_time:
                return n / elapsed, elapsed / n
            n *= 2

    # The CLI owns its registry: system telemetry stays off by default.
    registry = MetricRegistry()
    compile_hist = registry.histogram(
        "codec_compile_seconds", "TypeCode plan compilation time", labels=("tc",)
    )
    op_hist = registry.histogram(
        "codec_marshal_seconds",
        "Per-operation marshal cost",
        labels=("tc", "op", "path"),
    )
    clear_codec_cache()
    rows = []
    for name, tc, value in _marshal_corpus():
        start = time.perf_counter()
        compile_codec(tc)
        compile_hist.labels(tc=name).observe(time.perf_counter() - start)

        def enc_interp(tc=tc, value=value):
            encoder = CdrEncoder("big")
            encoder.encode(tc, value)
            return encoder.getvalue()

        def enc_fast(tc=tc, value=value):
            encoder = FastEncoder("big")
            encoder.encode(tc, value)
            wire = encoder.getvalue()
            encoder.release()
            return wire

        wire = enc_interp()
        assert wire == enc_fast()

        def dec_interp(tc=tc, wire=wire):
            return CdrDecoder(wire, "big").decode(tc)

        def dec_fast(tc=tc, wire=wire):
            return FastDecoder(wire, "big").decode(tc)

        cells = {}
        for op, path, fn in (
            ("encode", "interpreted", enc_interp),
            ("encode", "compiled", enc_fast),
            ("decode", "interpreted", dec_interp),
            ("decode", "compiled", dec_fast),
        ):
            ops, per_op = rate(fn)
            cells[(op, path)] = ops
            op_hist.labels(tc=name, op=op, path=path).observe(per_op)
        rows.append(
            f"  {name:18s} {len(wire):6d} B   "
            f"encode x{cells[('encode', 'compiled')] / cells[('encode', 'interpreted')]:5.1f}   "
            f"decode x{cells[('decode', 'compiled')] / cells[('decode', 'interpreted')]:5.1f}   "
            f"({cells[('encode', 'compiled')]:,.0f} enc/s, "
            f"{cells[('decode', 'compiled')]:,.0f} dec/s)"
        )
    print("compiled-codec speedup vs interpreted CDR (big-endian):")
    for row in rows:
        print(row)
    stats = codec_cache_stats()
    print()
    print(
        f"codec cache: {stats['size']:.0f} plans, hit rate "
        f"{stats['hit_rate']:.1%} ({stats['hits']:.0f} hits / "
        f"{stats['misses']:.0f} misses, {stats['compiled']:.0f} compiled)"
    )
    pool = BUFFER_POOL.stats()
    print(
        f"encoder pool: {pool['reused']:.0f} reuses, "
        f"{pool['acquired']:.0f} fresh buffers"
    )
    print()
    print(render_metrics_table(registry))
    if json_path is not None:
        records = metric_records(registry)
        records.append({"record": "codec_cache", **stats})
        try:
            lines = write_jsonl(json_path, records)
        except OSError as exc:
            print(f"bench: cannot write {json_path}: {exc}")
            return 1
        print(f"\nwrote {lines} metric records to {json_path}")
    return 0


def cmd_serve(args: list[str]) -> int:
    """Host one node of a real cluster (see :mod:`repro.net.node`).

    ``python -m repro serve --config topology.toml --node calc-e1
    [--out DIR] [--rejoin]``
    """
    from repro.net.node import main as serve_main

    return serve_main(args)


def cmd_net(args: list[str]) -> int:
    """Real-wire cluster operations: ``net smoke`` and ``net bench``.

    ``python -m repro net smoke [--requests N] [--seed N] [--shards N]
    [--json PATH]``
        Launch the full loopback cluster (4 GM + 4 replicas + client) as
        OS processes, drive the echo workload to quorum commit, tear down.
        Exit 1 if any request fails — the CI PR gate. ``--shards N``
        deploys the sharded kv topology instead (one replication domain
        per shard, keys routed to their home shards — E20).

    ``python -m repro net bench [--requests N] [--seed N] [--json PATH]``
        The E18 comparison: the same workload on the sim backend and on
        the wire, with throughput and p50/p99 latency side by side.
    """
    import json as _json

    from repro.net.bench import run_comparison, run_wire_benchmark

    try:
        json_path, args = _json_path(args)
    except ValueError as exc:
        print(f"net: {exc}")
        return 2
    if not args or args[0] not in ("smoke", "bench"):
        print("net: usage: net {smoke|bench} [--requests N] [--seed N] "
              "[--json PATH]")
        return 2
    mode, args = args[0], args[1:]
    requests = 8 if mode == "smoke" else 40
    seed = 7
    shards = 1
    it = iter(args)
    try:
        for arg in it:
            if arg == "--requests":
                requests = int(next(it))
            elif arg == "--seed":
                seed = int(next(it))
            elif arg == "--shards" and mode == "smoke":
                shards = int(next(it))
            else:
                print(f"net: unknown argument {arg!r}")
                return 2
    except (StopIteration, ValueError):
        print("net: --requests/--seed/--shards need an integer value")
        return 2

    if mode == "smoke":
        report = run_wire_benchmark(
            requests=requests, seed=seed, telemetry=True, shards=shards
        )
        ok = not report["errors"] and report["okay"] == report["requests"]
        print(f"net smoke: {report['processes']} processes, "
              f"{report['okay']}/{report['requests']} voted replies, "
              f"p50 {report['latency_p50'] * 1000:.1f}ms "
              f"p99 {report['latency_p99'] * 1000:.1f}ms, "
              f"{report['frames_sent']} frames on the wire")
        for error in report["errors"]:
            print(f"net smoke: FAILED: {error}")
        if report["server_exit_codes"]:
            print(f"net smoke: nonzero server exits: "
                  f"{report['server_exit_codes']}")
            ok = False
        payload: dict = report
    else:
        payload = run_comparison(requests=requests, seed=seed)
        sim, wire = payload["sim"], payload["wire"]
        print("E18 — sim vs real-wire backend "
              f"({requests} voted invocations, f=1):")
        print(f"  {'backend':8s} {'req/s':>10s} {'p50':>10s} {'p99':>10s}")
        print(f"  {'sim':8s} {sim['requests_per_second']:10.1f} "
              f"{sim['latency_p50'] * 1000:9.2f}ms "
              f"{sim['latency_p99'] * 1000:9.2f}ms   (latency in sim-time)")
        print(f"  {'wire':8s} {wire['requests_per_second']:10.1f} "
              f"{wire['latency_p50'] * 1000:9.2f}ms "
              f"{wire['latency_p99'] * 1000:9.2f}ms   "
              f"({wire['processes']} OS processes, loopback TCP)")
        ok = not wire["errors"] and wire["okay"] == wire["requests"]
        if not ok:
            print(f"net bench: wire run failed: {wire['errors']}")
    if json_path is not None:
        try:
            with open(json_path, "w", encoding="utf-8") as handle:
                _json.dump(payload, handle, indent=2, sort_keys=True)
        except OSError as exc:
            print(f"net: cannot write {json_path}: {exc}")
            return 1
        print(f"net: wrote report to {json_path}")
    return 0 if ok else 1


DEMOS = {
    "quickstart": demo_quickstart,
    "intrusion": demo_intrusion,
    "voting": demo_voting,
}

COMMANDS = {
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "recover": cmd_recover,
    "bench": cmd_bench,
    "chaos": cmd_chaos,
    "detect": cmd_detect,
    "audit": cmd_audit,
    "serve": cmd_serve,
    "net": cmd_net,
}


def main(argv: list[str]) -> int:
    name = argv[0] if argv else "quickstart"
    command = COMMANDS.get(name)
    if command is not None:
        return command(argv[1:])
    demo = DEMOS.get(name)
    if demo is None:
        available = ", ".join(sorted({**DEMOS, **COMMANDS}))
        print(f"unknown demo {name!r}; available: {available}")
        return 2
    print(f"=== repro demo: {name} ===")
    demo()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
