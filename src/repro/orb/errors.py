"""CORBA-style exception hierarchy.

System exceptions map to the standard minor-code families a CORBA developer
expects; user exceptions carry an exception repository id and description
and marshal through GIOP reply status USER_EXCEPTION.
"""

from __future__ import annotations


class CorbaError(Exception):
    """Root of all ORB-level errors."""


class SystemException(CorbaError):
    """Standard CORBA system exception."""

    repo_id = "IDL:omg.org/CORBA/SystemException:1.0"

    def __init__(self, description: str = "") -> None:
        super().__init__(description or self.repo_id)
        self.description = description


class ObjectNotExist(SystemException):
    """No servant registered under the requested object key."""

    repo_id = "IDL:omg.org/CORBA/OBJECT_NOT_EXIST:1.0"


class BadOperation(SystemException):
    """The interface has no such operation, or dispatch failed."""

    repo_id = "IDL:omg.org/CORBA/BAD_OPERATION:1.0"


class CommFailure(SystemException):
    """Transport-level failure."""

    repo_id = "IDL:omg.org/CORBA/COMM_FAILURE:1.0"


class TransientError(SystemException):
    """Temporarily unable to complete; retry may succeed."""

    repo_id = "IDL:omg.org/CORBA/TRANSIENT:1.0"


class NoResponse(SystemException):
    """No (voted) reply arrived within the deadline."""

    repo_id = "IDL:omg.org/CORBA/NO_RESPONSE:1.0"


class UserException(CorbaError):
    """Application-defined exception raised by a servant.

    Travels as ``(exception_id, description)`` in a USER_EXCEPTION reply
    and is re-raised on the client side.
    """

    def __init__(self, exception_id: str, description: str = "") -> None:
        super().__init__(f"{exception_id}: {description}")
        self.exception_id = exception_id
        self.description = description


_SYSTEM_BY_REPO_ID = {
    cls.repo_id: cls
    for cls in (ObjectNotExist, BadOperation, CommFailure, TransientError, NoResponse, SystemException)
}


def exception_to_wire(exc: CorbaError) -> tuple[str, str, int]:
    """(exception_id, description, reply_status_int) for marshalling."""
    from repro.giop.messages import ReplyStatus

    if isinstance(exc, UserException):
        return exc.exception_id, exc.description, int(ReplyStatus.USER_EXCEPTION)
    if isinstance(exc, SystemException):
        return exc.repo_id, exc.description, int(ReplyStatus.SYSTEM_EXCEPTION)
    return SystemException.repo_id, str(exc), int(ReplyStatus.SYSTEM_EXCEPTION)


def exception_from_wire(exception_id: str, description: str, is_system: bool) -> CorbaError:
    """Reconstruct the client-side exception from a decoded reply."""
    if is_system:
        cls = _SYSTEM_BY_REPO_ID.get(exception_id, SystemException)
        exc = cls(description)
        return exc
    return UserException(exception_id, description)
