"""Servants: the application objects hosted by a server.

A servant implements the operations of one interface as Python methods.
Two method shapes are supported:

* **plain methods** — compute and return the result directly; and
* **generator methods** — for servants that make *nested invocations* on
  other replication domains (§3.1). A generator method ``yield``s each
  remote :class:`PendingCall` (produced by calling a stub method) and
  receives its voted result back at the yield point::

      def transfer(self, amount):
          balance = yield self.audit_stub.record(amount)   # nested call
          return balance + amount

This is the deterministic single-threaded execution model: the ORB parks the
generator while the reply travels through the totally ordered channel, and
resumes it at the exact same point on every replica.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any

from repro.giop.idl import InterfaceDef
from repro.giop.ior import ObjectRef
from repro.orb.errors import BadOperation


@dataclass(frozen=True)
class PendingCall:
    """A nested remote invocation requested by a servant.

    Created by stub methods when invoked in servant context; the servant
    must ``yield`` it, and the ORB supplies the result.
    """

    ref: ObjectRef
    operation: str
    args: tuple[Any, ...]

    def trace_label(self) -> str:
        return f"PendingCall({self.ref.interface_name}.{self.operation})"


class Servant:
    """Base class for application objects.

    Subclasses set :attr:`interface` (an :class:`InterfaceDef`) and define
    one method per operation.
    """

    interface: InterfaceDef

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)

    def dispatch(self, operation: str, args: tuple[Any, ...]) -> Any:
        """Invoke ``operation``; returns the result or a live generator.

        The caller (the ORB's request loop) distinguishes the two by
        :func:`inspect.isgenerator` on the return value.
        """
        if not self.interface.has_operation(operation):
            raise BadOperation(f"{self.interface.name} has no operation {operation!r}")
        method = getattr(self, operation, None)
        if method is None or not callable(method):
            raise BadOperation(
                f"servant {type(self).__name__} does not implement {operation!r}"
            )
        return method(*args)

    def is_generator_operation(self, operation: str) -> bool:
        """Does this operation make nested invocations?"""
        method = getattr(self, operation, None)
        return method is not None and inspect.isgeneratorfunction(method)
