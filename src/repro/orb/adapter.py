"""The object adapter: object keys to servants.

Plays the POA's role. Per §3.4, ITDOS replicates at *server* granularity —
a replication domain hosts the adapter's full servant census identically on
every element — so the adapter also enumerates its objects for domain
registration.
"""

from __future__ import annotations

from repro.giop.codec import warm_interface
from repro.giop.ior import ObjectRef
from repro.orb.errors import ObjectNotExist
from repro.orb.servant import Servant


class ObjectAdapter:
    """Maps object keys to active servants within one server."""

    def __init__(self) -> None:
        self._servants: dict[bytes, Servant] = {}

    def activate(self, object_key: bytes, servant: Servant) -> bytes:
        """Register ``servant`` under ``object_key``."""
        if not object_key:
            raise ValueError("object key must be non-empty")
        if object_key in self._servants:
            raise ValueError(f"object key {object_key!r} already active")
        self._servants[object_key] = servant
        # Precompile marshal plans for the servant's operations: every reply
        # this element sends will use them.
        warm_interface(servant.interface)
        return object_key

    def deactivate(self, object_key: bytes) -> None:
        if object_key not in self._servants:
            raise ObjectNotExist(f"no servant under key {object_key!r}")
        del self._servants[object_key]

    def servant_for(self, object_key: bytes) -> Servant:
        servant = self._servants.get(object_key)
        if servant is None:
            raise ObjectNotExist(f"no servant under key {object_key!r}")
        return servant

    def object_keys(self) -> list[bytes]:
        return sorted(self._servants)

    def make_ref(
        self, object_key: bytes, domain_id: str, transport: str = "smiop"
    ) -> ObjectRef:
        """Create the object reference clients will hold."""
        servant = self.servant_for(object_key)
        return ObjectRef(
            interface_name=servant.interface.name,
            domain_id=domain_id,
            object_key=object_key,
            transport=transport,
        )

    def __len__(self) -> int:
        return len(self._servants)
