"""Dynamic client stubs.

A :class:`Stub` wraps an object reference and exposes the interface's
operations as Python methods. Marshalling, transport, and voting are the
invoker's concern — the same stub class serves:

* top-level client code, whose invoker sends the request and *runs the
  simulation* until the voted reply arrives, then returns it; and
* servant code, whose invoker returns a :class:`~repro.orb.servant.PendingCall`
  for the servant to ``yield`` (nested invocation, §3.1).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.giop.codec import warm_interface
from repro.giop.idl import InterfaceDef
from repro.giop.ior import ObjectRef
from repro.orb.errors import BadOperation

Invoker = Callable[[ObjectRef, str, tuple[Any, ...]], Any]


class Stub:
    """Proxy for a remote object."""

    def __init__(self, ref: ObjectRef, interface: InterfaceDef, invoker: Invoker) -> None:
        if ref.interface_name != interface.name:
            raise BadOperation(
                f"reference is for {ref.interface_name}, stub built for {interface.name}"
            )
        self._ref = ref
        self._interface = interface
        self._invoker = invoker
        # Precompile marshal plans so the first invocation is already warm.
        warm_interface(interface)

    @property
    def ref(self) -> ObjectRef:
        return self._ref

    def is_read_only(self, operation: str) -> bool:
        """Whether the IDL declares ``operation`` side-effect free.

        Surface for callers (workload generators, tooling) that want to
        know which calls are fast-path eligible; the transport learns the
        same fact from the interface repository, not from the stub.
        """
        return self._interface.operation(operation).read_only

    def __getattr__(self, name: str) -> Callable[..., Any]:
        # Only reached for names not found normally — i.e. operations.
        if not self._interface.has_operation(name):
            raise AttributeError(
                f"interface {self._interface.name} has no operation {name!r}"
            )
        operation = self._interface.operation(name)

        def call(*args: Any) -> Any:
            operation.validate_args(args)
            return self._invoker(self._ref, name, args)

        call.__name__ = name
        return call

    def __repr__(self) -> str:
        return f"<Stub {self._interface.name}@{self._ref.domain_id}>"
