"""A compact CORBA-like Object Request Broker.

The paper builds on TAO [38], an open-source C++ ORB, integrating ITDOS
through TAO's *pluggable protocols* framework [27]. This package provides the
ORB-shaped substrate the middleware needs:

* :mod:`~repro.orb.core` — the ORB: marshalling via :mod:`repro.giop`,
  request dispatch, transport selection;
* :mod:`~repro.orb.adapter` — the object adapter (POA role): object keys to
  servants;
* :mod:`~repro.orb.servant` — servant base class; operations may be plain
  methods or *generator* methods that ``yield`` nested remote calls (the
  single-threaded deterministic execution model of §2, with §3.1's
  nested-invocation support);
* :mod:`~repro.orb.stubs` — dynamic client stubs typed by interface
  definitions;
* :mod:`~repro.orb.pluggable` — the pluggable protocol interface that both
  the IIOP baseline and ITDOS's SMIOP implement;
* :mod:`~repro.orb.iiop` — an unreplicated point-to-point transport over the
  simulator: the non-fault-tolerant baseline every benchmark compares
  against.
"""

from repro.orb.adapter import ObjectAdapter
from repro.orb.core import Orb
from repro.orb.errors import (
    BadOperation,
    CommFailure,
    CorbaError,
    NoResponse,
    ObjectNotExist,
    SystemException,
    TransientError,
    UserException,
)
from repro.orb.iiop import IiopClient, IiopServer
from repro.orb.pluggable import Connection, PluggableProtocol
from repro.orb.servant import PendingCall, Servant
from repro.orb.stubs import Stub

__all__ = [
    "BadOperation",
    "CommFailure",
    "Connection",
    "CorbaError",
    "IiopClient",
    "IiopServer",
    "NoResponse",
    "ObjectAdapter",
    "ObjectNotExist",
    "Orb",
    "PendingCall",
    "PluggableProtocol",
    "Servant",
    "Stub",
    "SystemException",
    "TransientError",
    "UserException",
]
