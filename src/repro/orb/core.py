"""The ORB core: marshalling glue between stubs, servants, and transports.

One :class:`Orb` instance lives inside each process (client or replication
domain element). It owns the process's platform profile — so all marshalling
uses that platform's byte order, and all servant results pass through the
platform's floating-point model (the heterogeneity simulation, see
:mod:`repro.giop.platforms`).
"""

from __future__ import annotations

from typing import Any

from repro.giop.idl import InterfaceRepository
from repro.giop.ior import ObjectRef
from repro.giop.messages import (
    ReplyMessage,
    ReplyStatus,
    RequestMessage,
    decode_message,
    encode_reply,
    encode_request,
)
from repro.giop.platforms import HOMOGENEOUS, PlatformProfile
from repro.orb.adapter import ObjectAdapter
from repro.orb.errors import (
    BadOperation,
    CorbaError,
    exception_from_wire,
    exception_to_wire,
)
from repro.orb.pluggable import PluggableProtocol
from repro.orb.servant import Servant
from repro.obs import NOOP_TELEMETRY


class Orb:
    """Marshalling, dispatch, and transport registry for one process."""

    def __init__(
        self,
        repository: InterfaceRepository,
        platform: PlatformProfile = HOMOGENEOUS,
    ) -> None:
        self.repository = repository
        self.platform = platform
        self.adapter = ObjectAdapter()
        self._transports: dict[str, PluggableProtocol] = {}
        # Deployment wiring (bootstrap) swaps this for the system telemetry.
        self.telemetry = NOOP_TELEMETRY

    def _count(self, name: str, help: str) -> None:
        t = self.telemetry
        if t.enabled:
            t.registry.counter(name, help).inc()

    # -- transports ---------------------------------------------------------

    def register_transport(self, protocol: PluggableProtocol) -> None:
        if protocol.name in self._transports:
            raise ValueError(f"transport {protocol.name!r} already registered")
        self._transports[protocol.name] = protocol

    def transport_for(self, ref: ObjectRef) -> PluggableProtocol:
        protocol = self._transports.get(ref.transport)
        if protocol is None:
            raise BadOperation(f"no transport registered for {ref.transport!r}")
        return protocol

    # -- client side ---------------------------------------------------------

    def marshal_request(
        self,
        ref: ObjectRef,
        operation: str,
        args: tuple[Any, ...],
        request_id: int,
        response_expected: bool = True,
    ) -> bytes:
        """Encode a request in this process's native byte order."""
        self._count("orb_requests_marshalled_total", "GIOP Requests encoded")
        return encode_request(
            self.repository,
            ref.interface_name,
            operation,
            args,
            request_id=request_id,
            object_key=ref.object_key,
            response_expected=response_expected,
            byte_order=self.platform.byte_order,
        )

    def unmarshal_reply(self, wire: bytes) -> ReplyMessage:
        message = decode_message(self.repository, wire)
        if not isinstance(message, ReplyMessage):
            raise BadOperation("expected a GIOP Reply")
        return message

    @staticmethod
    def result_from_reply(message: ReplyMessage) -> Any:
        """Extract the result, raising the remote exception if one travelled."""
        if message.reply_status == ReplyStatus.NO_EXCEPTION:
            return message.result
        exception_id, description = message.result
        raise exception_from_wire(
            exception_id,
            description,
            is_system=message.reply_status == ReplyStatus.SYSTEM_EXCEPTION,
        )

    # -- server side ----------------------------------------------------------

    def unmarshal_request(self, wire: bytes) -> RequestMessage:
        message = decode_message(self.repository, wire)
        if not isinstance(message, RequestMessage):
            raise BadOperation("expected a GIOP Request")
        return message

    def dispatch(self, message: RequestMessage) -> Any:
        """Find the servant and invoke the operation.

        Returns the raw result, or a live generator when the servant makes
        nested invocations; the caller drives generators to completion.
        Application exceptions propagate to the caller.
        """
        self._count("orb_dispatches_total", "Servant dispatches")
        servant: Servant = self.adapter.servant_for(message.object_key)
        if servant.interface.name != message.interface_name:
            raise BadOperation(
                f"object key {message.object_key!r} hosts {servant.interface.name}, "
                f"request names {message.interface_name}"
            )
        return servant.dispatch(message.operation, message.args)

    def marshal_reply(self, message: RequestMessage, result: Any) -> bytes:
        """Encode a normal reply, applying the platform's float model.

        The perturbation happens here — after computation, before
        marshalling — modelling a platform whose arithmetic pipeline carried
        less precision all along.
        """
        self._count("orb_replies_marshalled_total", "GIOP Replies encoded")
        perturbed = self.platform.perturb_result(result)
        return encode_reply(
            self.repository,
            message.interface_name,
            message.operation,
            request_id=message.request_id,
            result=perturbed,
            byte_order=self.platform.byte_order,
        )

    def marshal_exception_reply(self, message: RequestMessage, exc: Exception) -> bytes:
        """Encode an exception reply."""
        self._count("orb_exception_replies_total", "GIOP exception Replies encoded")
        if not isinstance(exc, CorbaError):
            exc = BadOperation(f"servant raised {type(exc).__name__}: {exc}")
        exception_id, description, status = exception_to_wire(exc)
        return encode_reply(
            self.repository,
            message.interface_name,
            message.operation,
            request_id=message.request_id,
            result=(exception_id, description),
            reply_status=ReplyStatus(status),
            byte_order=self.platform.byte_order,
        )
