"""Plain IIOP over the simulator: the unreplicated baseline.

One server process, point-to-point "TCP" with a one-round-trip connection
handshake, no replication, no voting, no encryption. Benchmarks compare
ITDOS against this to quantify the price of intrusion tolerance (E10), and
the connection-establishment experiment (E2) uses its handshake cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.giop.ior import ObjectRef
from repro.orb.core import Orb
from repro.orb.errors import CommFailure
from repro.orb.pluggable import Connection, PluggableProtocol, ReplyHandler
from repro.orb.stubs import Stub
from repro.sim.process import Process


@dataclass(frozen=True)
class _TcpSyn:
    conn_id: int

    def trace_label(self) -> str:
        return f"TcpSyn({self.conn_id})"


@dataclass(frozen=True)
class _TcpAck:
    conn_id: int

    def trace_label(self) -> str:
        return f"TcpAck({self.conn_id})"


@dataclass(frozen=True)
class _GiopPacket:
    conn_id: int
    wire: bytes

    def wire_size(self) -> int:
        return len(self.wire) + 8

    def trace_label(self) -> str:
        return f"GiopPacket(conn={self.conn_id},{len(self.wire)}B)"


class IiopServer(Process):
    """Hosts an ORB and serves GIOP requests over simulated TCP."""

    def __init__(self, pid: str, orb: Orb) -> None:
        super().__init__(pid)
        self.orb = orb
        self.requests_served = 0

    def ref_for(self, object_key: bytes) -> ObjectRef:
        return self.orb.adapter.make_ref(object_key, domain_id=self.pid, transport="iiop")

    def on_message(self, src: str, payload: Any) -> None:
        from repro.giop.messages import (
            CloseConnectionMessage,
            GiopError,
            LocateRequestMessage,
            LocateStatus,
            RequestMessage,
            decode_message,
            encode_locate_reply,
            encode_message_error,
        )
        from repro.orb.errors import ObjectNotExist

        if isinstance(payload, _TcpSyn):
            self.send(src, _TcpAck(conn_id=payload.conn_id))
            return
        if not isinstance(payload, _GiopPacket):
            return
        try:
            decoded = decode_message(self.orb.repository, payload.wire)
        except GiopError:
            self.send(
                src,
                _GiopPacket(conn_id=payload.conn_id, wire=encode_message_error()),
            )
            return
        if isinstance(decoded, LocateRequestMessage):
            try:
                self.orb.adapter.servant_for(decoded.object_key)
                status = LocateStatus.OBJECT_HERE
            except ObjectNotExist:
                status = LocateStatus.UNKNOWN_OBJECT
            self.send(
                src,
                _GiopPacket(
                    conn_id=payload.conn_id,
                    wire=encode_locate_reply(decoded.request_id, status),
                ),
            )
            return
        if isinstance(decoded, CloseConnectionMessage):
            return  # peer closed; nothing server-side to tear down here
        if not isinstance(decoded, RequestMessage):
            return
        message = decoded
        try:
            result = self.orb.dispatch(message)
            if hasattr(result, "send") and hasattr(result, "throw"):
                raise CommFailure(
                    "nested invocations require the ITDOS transport; "
                    "the IIOP baseline hosts plain servants only"
                )
            reply = self.orb.marshal_reply(message, result)
        except Exception as exc:  # noqa: BLE001 - marshalled back to caller
            reply = self.orb.marshal_exception_reply(message, exc)
        self.requests_served += 1
        if message.response_expected:
            self.send(src, _GiopPacket(conn_id=payload.conn_id, wire=reply))


class _IiopConnection(Connection):
    """Client end of one simulated TCP connection."""

    def __init__(self, client: "IiopClient", server_pid: str, conn_id: int) -> None:
        self.client = client
        self.server_pid = server_pid
        self.conn_id = conn_id
        self._open = False
        self._next_request_id = 0
        self._handlers: dict[int, ReplyHandler] = {}
        self._locate_handlers: dict[int, Any] = {}

    @property
    def connected(self) -> bool:
        return self._open

    def next_request_id(self) -> int:
        self._next_request_id += 1
        return self._next_request_id

    def send_request(
        self, wire: bytes, on_reply: ReplyHandler | None, read_only: bool = False
    ) -> None:
        # IIOP has no fast path; the read_only hint is accepted and ignored.
        if not self._open:
            raise CommFailure("connection not established")
        message = self.client.orb.unmarshal_request(wire)
        if on_reply is not None:
            self._handlers[message.request_id] = on_reply
        self.client.send(self.server_pid, _GiopPacket(conn_id=self.conn_id, wire=wire))

    def send_locate(self, object_key: bytes, on_status) -> None:
        """GIOP LocateRequest: probe whether the peer serves an object."""
        from repro.giop.messages import encode_locate_request

        if not self._open:
            raise CommFailure("connection not established")
        request_id = self.next_request_id()
        self._locate_handlers[request_id] = on_status
        self.client.send(
            self.server_pid,
            _GiopPacket(
                conn_id=self.conn_id, wire=encode_locate_request(request_id, object_key)
            ),
        )

    def handle_reply(self, wire: bytes) -> None:
        from repro.giop.messages import (
            GiopError,
            LocateReplyMessage,
            ReplyMessage,
            decode_message,
        )

        try:
            message = decode_message(self.client.orb.repository, wire)
        except GiopError:
            return
        if isinstance(message, LocateReplyMessage):
            handler = self._locate_handlers.pop(message.request_id, None)
            if handler is not None:
                handler(message.locate_status)
            return
        if isinstance(message, ReplyMessage):
            handler = self._handlers.pop(message.request_id, None)
            if handler is not None:
                handler(wire)

    def close(self) -> None:
        from repro.giop.messages import encode_close_connection

        if self._open:
            self.client.send(
                self.server_pid,
                _GiopPacket(conn_id=self.conn_id, wire=encode_close_connection()),
            )
        self._open = False
        self.client._drop_connection(self)


class IiopTransport(PluggableProtocol):
    """Pluggable protocol adapter for the IIOP client."""

    name = "iiop"

    def __init__(self, client: "IiopClient") -> None:
        self.client = client

    def connect(self, ref: ObjectRef, on_ready: Callable[[Connection], None]) -> None:
        self.client.connect(ref.domain_id, on_ready)


class IiopClient(Process):
    """Unreplicated CORBA client over simulated TCP."""

    def __init__(self, pid: str, orb: Orb) -> None:
        super().__init__(pid)
        self.orb = orb
        self._next_conn = 0
        self._connections: dict[int, _IiopConnection] = {}
        self._by_server: dict[str, _IiopConnection] = {}
        self._awaiting_ack: dict[int, Callable[[Connection], None]] = {}
        orb.register_transport(IiopTransport(self))
        self.handshakes = 0

    def connect(self, server_pid: str, on_ready: Callable[[Connection], None]) -> None:
        existing = self._by_server.get(server_pid)
        if existing is not None and existing.connected:
            on_ready(existing)  # connection reuse (§3.4)
            return
        self._next_conn += 1
        connection = _IiopConnection(self, server_pid, self._next_conn)
        self._connections[connection.conn_id] = connection
        self._by_server[server_pid] = connection
        self._awaiting_ack[connection.conn_id] = on_ready
        self.handshakes += 1
        self.send(server_pid, _TcpSyn(conn_id=connection.conn_id))

    def _drop_connection(self, connection: _IiopConnection) -> None:
        self._connections.pop(connection.conn_id, None)
        if self._by_server.get(connection.server_pid) is connection:
            del self._by_server[connection.server_pid]

    def on_message(self, src: str, payload: Any) -> None:
        if isinstance(payload, _TcpAck):
            connection = self._connections.get(payload.conn_id)
            on_ready = self._awaiting_ack.pop(payload.conn_id, None)
            if connection is not None:
                connection._open = True
                if on_ready is not None:
                    on_ready(connection)
            return
        if isinstance(payload, _GiopPacket):
            connection = self._connections.get(payload.conn_id)
            if connection is not None:
                connection.handle_reply(payload.wire)

    # -- synchronous convenience API (drives the simulation) -----------------

    def locate(self, ref: ObjectRef) -> bool:
        """GIOP LocateRequest round trip: is the object served there?"""
        from repro.giop.messages import LocateStatus

        outcome: list[LocateStatus] = []

        def on_connection(connection: Connection) -> None:
            assert isinstance(connection, _IiopConnection)
            connection.send_locate(ref.object_key, outcome.append)

        self.connect(ref.domain_id, on_connection)
        network = self._require_network()
        network.run(stop_when=lambda: bool(outcome), max_events=100_000)
        if not outcome:
            raise CommFailure("no locate reply")
        return outcome[0] == LocateStatus.OBJECT_HERE

    def stub(self, ref: ObjectRef) -> Stub:
        """A stub whose calls run the simulation until the reply arrives."""
        interface = self.orb.repository.lookup(ref.interface_name)
        return Stub(ref, interface, self._sync_invoke)

    def _sync_invoke(self, ref: ObjectRef, operation: str, args: tuple[Any, ...]) -> Any:
        outcome: list[Any] = []

        def on_connection(connection: Connection) -> None:
            assert isinstance(connection, _IiopConnection)
            request_id = connection.next_request_id()
            oneway = self.orb.repository.lookup(ref.interface_name).operation(operation).oneway
            wire = self.orb.marshal_request(
                ref, operation, args, request_id, response_expected=not oneway
            )
            if oneway:
                connection.send_request(wire, None)
                outcome.append(("result", None))
                return
            connection.send_request(
                wire, lambda reply: outcome.append(("reply", reply))
            )

        self.connect(ref.domain_id, on_connection)
        network = self._require_network()
        network.run(stop_when=lambda: bool(outcome), max_events=1_000_000)
        if not outcome:
            raise CommFailure(f"no reply for {ref.interface_name}.{operation}")
        kind, value = outcome[0]
        if kind == "result":
            return value
        return Orb.result_from_reply(self.orb.unmarshal_reply(value))
