"""The pluggable protocol framework.

TAO's pluggable protocols [27] let a transport slot under the ORB without
touching application code; "the TAO Pluggable Protocol provides an interface
to the ORB for ITDOS to layer traditional socket semantics on the
Castro-Liskov BFT protocol" (§3.3). Two implementations exist here: plain
IIOP (:mod:`repro.orb.iiop`) and SMIOP (:mod:`repro.itdos.smiop`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.giop.ior import ObjectRef

ReplyHandler = Callable[[bytes], None]


class Connection(ABC):
    """One established (possibly virtual) connection to a target."""

    @abstractmethod
    def send_request(
        self,
        wire: bytes,
        on_reply: ReplyHandler | None,
        read_only: bool = False,
    ) -> None:
        """Transmit one marshalled GIOP request.

        ``on_reply`` receives the (voted, decrypted) marshalled GIOP reply;
        pass None for oneway operations. ``read_only`` asserts the request
        invokes an IDL-declared side-effect-free operation; a transport may
        then serve it on a read fast path (SMIOP's tentative execution) —
        or ignore the hint entirely, as plain IIOP does.
        """

    @abstractmethod
    def close(self) -> None:
        """Release the connection."""

    @property
    @abstractmethod
    def connected(self) -> bool:
        """Is the connection usable?"""


class PluggableProtocol(ABC):
    """Factory for connections of one transport kind."""

    name: str = "abstract"

    @abstractmethod
    def connect(self, ref: ObjectRef, on_ready: Callable[[Connection], None]) -> None:
        """Establish a connection to the domain in ``ref``.

        Connection establishment may require protocol exchanges (Figure 3),
        so the result is delivered to ``on_ready`` rather than returned.
        Implementations must reuse an existing live connection to the same
        domain (§3.4: "connection reuse enhances performance").
        """
