"""Event scheduler: the heart of the deterministic simulation.

The scheduler is a priority queue of ``(time, sequence, callback)`` entries.
The ``sequence`` counter breaks ties between events scheduled for the same
instant, so execution order is a pure function of the schedule calls that
produced it — two runs with the same seed interleave identically.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class TimerHandle:
    """Opaque handle returned by :meth:`Scheduler.schedule`.

    Holding a handle allows the event to be cancelled before it fires.
    Handles compare by identity of their ``(time, seq)`` slot.
    """

    time: float
    seq: int


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Scheduler:
    """A deterministic discrete-event scheduler.

    Example::

        sched = Scheduler()
        sched.schedule(1.5, lambda: print("fires at t=1.5"))
        sched.run()
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[_Entry] = []
        self._live: dict[tuple[float, int], _Entry] = {}
        self._events_executed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far (for budget checks)."""
        return self._events_executed

    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay runs the callback on the
        next scheduler step, after all previously scheduled same-time events.
        """
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        entry = _Entry(time=self._now + delay, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, entry)
        self._live[(entry.time, entry.seq)] = entry
        return TimerHandle(time=entry.time, seq=entry.seq)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` at an absolute simulated time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        return self.schedule(time - self._now, callback)

    def cancel(self, handle: TimerHandle) -> bool:
        """Cancel a pending event. Returns True if it had not yet fired."""
        entry = self._live.pop((handle.time, handle.seq), None)
        if entry is None:
            return False
        entry.cancelled = True
        return True

    def pending(self) -> int:
        """Number of events still waiting to fire."""
        return len(self._live)

    def step(self) -> bool:
        """Execute the single next event. Returns False if none remain."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            del self._live[(entry.time, entry.seq)]
            self._now = entry.time
            self._events_executed += 1
            entry.callback()
            return True
        return False

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> None:
        """Run events until exhaustion or a stopping condition.

        ``until``: stop before executing any event scheduled after this time
        (the clock is advanced to ``until``).
        ``max_events``: safety valve against runaway protocols.
        ``stop_when``: predicate checked after every event.
        """
        executed = 0
        while self._heap:
            # Peek (skipping cancelled entries) to honour the `until` bound
            # without consuming the event.
            while self._heap and self._heap[0].cancelled:
                heapq.heappop(self._heap)
            if not self._heap:
                break
            if until is not None and self._heap[0].time > until:
                self._now = max(self._now, until)
                return
            if not self.step():
                break
            executed += 1
            if stop_when is not None and stop_when():
                return
            if max_events is not None and executed >= max_events:
                raise RuntimeError(
                    f"scheduler exceeded max_events={max_events}; "
                    "likely a livelocked protocol"
                )
        if until is not None:
            self._now = max(self._now, until)
