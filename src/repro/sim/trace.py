"""Message-flow tracing.

Experiments F1–F3 reproduce the paper's figures as *verified traces*: the
recorder captures every send and delivery with timestamps so a test can
assert, e.g., that connection establishment follows exactly the 5-step
sequence of Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One network-level occurrence.

    ``kind`` is one of ``"send"``, ``"deliver"``, ``"drop"``, ``"multicast"``.
    ``label`` summarises the payload (its class name, or the payload's own
    ``trace_label()`` when it defines one).
    """

    time: float
    kind: str
    src: str
    dst: str
    label: str
    payload: Any

    def __str__(self) -> str:
        return f"[{self.time:10.6f}] {self.kind:9s} {self.src} -> {self.dst}: {self.label}"


def _label_for(payload: Any) -> str:
    label_fn = getattr(payload, "trace_label", None)
    if callable(label_fn):
        return str(label_fn())
    return type(payload).__name__


class TraceRecorder:
    """Accumulates :class:`TraceEvent` records for later assertion/printing."""

    def __init__(self, capacity: int | None = None) -> None:
        self.events: list[TraceEvent] = []
        self.capacity = capacity
        self.enabled = True
        self.dropped = 0

    def record(self, time: float, kind: str, src: str, dst: str, payload: Any) -> None:
        if not self.enabled:
            return
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(
                time=time,
                kind=kind,
                src=src,
                dst=dst,
                label=_label_for(payload),
                payload=payload,
            )
        )

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def filter(
        self,
        kind: str | None = None,
        label: str | None = None,
        src: str | None = None,
        dst: str | None = None,
        predicate: Callable[[TraceEvent], bool] | None = None,
    ) -> list[TraceEvent]:
        """Select events matching every given criterion."""
        out = []
        for event in self.events:
            if kind is not None and event.kind != kind:
                continue
            if label is not None and event.label != label:
                continue
            if src is not None and event.src != src:
                continue
            if dst is not None and event.dst != dst:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def labels(self, kind: str | None = None) -> list[str]:
        """The sequence of event labels, optionally restricted to one kind."""
        return [e.label for e in self.events if kind is None or e.kind == kind]

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def render(self, limit: int | None = None) -> str:
        """Human-readable multi-line rendering (used by figure benches)."""
        rows = self.events if limit is None else self.events[:limit]
        lines = [str(e) for e in rows]
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped (capacity {self.capacity})")
        return "\n".join(lines)


def render_sequence_diagram(
    events: list[TraceEvent],
    participants: list[str],
    collapse: dict[str, str] | None = None,
    max_rows: int = 60,
) -> str:
    """ASCII sequence diagram of ``events`` between ``participants``.

    ``collapse`` maps process ids to lane names, letting a whole
    replication domain share one lane ("calc-e0".."calc-e3" -> "calc[4]").
    Only ``send`` events between known lanes are drawn; consecutive
    identical rows (same lanes + label) are merged with a repeat count —
    exactly what a protocol figure does with fan-out arrows.
    """
    collapse = collapse or {}

    def lane_of(pid: str) -> str | None:
        name = collapse.get(pid, pid)
        return name if name in participants else None

    width = max(len(p) for p in participants) + 2
    header = "".join(p.center(width) for p in participants)
    columns = {p: i for i, p in enumerate(participants)}
    lines = [header]
    merged: list[tuple[str, str, str, int]] = []  # (src, dst, label, count)
    for event in events:
        if event.kind != "send":
            continue
        src, dst = lane_of(event.src), lane_of(event.dst)
        if src is None or dst is None or src == dst:
            continue
        if merged and merged[-1][:3] == (src, dst, event.label):
            merged[-1] = (src, dst, event.label, merged[-1][3] + 1)
        else:
            merged.append((src, dst, event.label, 1))
    for src, dst, label, count in merged[:max_rows]:
        a, b = columns[src], columns[dst]
        left, right = min(a, b), max(a, b)
        start = left * width + width // 2
        end = right * width + width // 2
        arrow = [" "] * (len(participants) * width)
        for column in columns.values():
            arrow[column * width + width // 2] = "|"  # lifelines
        for i in range(start + 1, end):
            arrow[i] = "-"
        if a < b:
            arrow[end] = ">"
        else:
            arrow[start] = "<"
        text = label + (f" x{count}" if count > 1 else "")
        lines.append("".join(arrow) + "  " + text)
    if len(merged) > max_rows:
        lines.append(f"... {len(merged) - max_rows} more rows")
    return "\n".join(lines)
