"""IP-multicast group emulation.

The paper's transport stack bottoms out at IP multicast (Figure 2). A
:class:`MulticastGroup` is an address plus a membership set; a send to the
address fans out to every current member with an independently drawn delay,
mirroring real multicast where per-receiver delivery times differ.

The simulator also tracks how many distinct group addresses have been
allocated — §3.4 argues process-granularity replication "conserves multicast
address allocation", which experiment E2 measures.
"""

from __future__ import annotations

from repro.sim.process import ProcessId


class MulticastGroup:
    """A named multicast address with a mutable membership set."""

    def __init__(self, address: str) -> None:
        if not address:
            raise ValueError("multicast address must be non-empty")
        self.address = address
        self.members: set[ProcessId] = set()

    def join(self, pid: ProcessId) -> None:
        """Add ``pid`` to the group (idempotent, like IGMP join)."""
        self.members.add(pid)

    def leave(self, pid: ProcessId) -> None:
        """Remove ``pid``; leaving a group one is not in is a no-op."""
        self.members.discard(pid)

    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self.members

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:
        return f"<MulticastGroup {self.address} members={sorted(self.members)}>"
