"""Process actors.

A :class:`Process` is a deterministic state machine driven entirely by
message deliveries and timer callbacks — the execution model the paper
requires of every replication domain element ("each replication domain
element employs a single-threaded execution model", §2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.sim.scheduler import TimerHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.network import Network

ProcessId = str


class Process:
    """Base class for every simulated process.

    Subclasses implement :meth:`on_message`. Processes send messages through
    the network they are attached to and may set deterministic timers.

    A crashed process silently drops deliveries and timer callbacks; this is
    the *crash* half of the fault model. Byzantine behaviour is implemented
    by subclassing (see :mod:`repro.itdos.faults`), never by flags scattered
    through correct-process code.
    """

    def __init__(self, pid: ProcessId) -> None:
        if not pid:
            raise ValueError("process id must be non-empty")
        self.pid: ProcessId = pid
        self.network: Network | None = None
        self.crashed: bool = False
        self._timers: set[TimerHandle] = set()

    # -- wiring -----------------------------------------------------------

    def attach(self, network: Network) -> None:
        """Called by :meth:`Network.add_process`; do not call directly."""
        self.network = network

    def _require_network(self) -> Network:
        if self.network is None:
            raise RuntimeError(f"process {self.pid!r} is not attached to a network")
        return self.network

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._require_network().scheduler.now

    @property
    def telemetry(self):
        """The world's telemetry facade (the shared no-op when unattached)."""
        if self.network is None:
            from repro.obs.telemetry import NOOP_TELEMETRY

            return NOOP_TELEMETRY
        return self.network.telemetry

    # -- messaging --------------------------------------------------------

    def send(self, dst: ProcessId, payload: Any) -> None:
        """Send ``payload`` point-to-point to process ``dst``."""
        if self.crashed:
            return
        self._require_network().send(self.pid, dst, payload)

    def multicast(self, group_addr: str, payload: Any) -> None:
        """Send ``payload`` to every member of an IP-multicast group."""
        if self.crashed:
            return
        self._require_network().multicast(self.pid, group_addr, payload)

    def deliver(self, src: ProcessId, payload: Any) -> None:
        """Entry point used by the network. Routes to :meth:`on_message`."""
        if self.crashed:
            return
        self.on_message(src, payload)

    def on_message(self, src: ProcessId, payload: Any) -> None:
        """Handle one delivered message. Subclasses override."""
        raise NotImplementedError

    # -- timers -----------------------------------------------------------

    def set_timer(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` after ``delay`` simulated seconds (unless crashed)."""
        scheduler = self._require_network().scheduler

        def guarded() -> None:
            self._timers.discard(handle)
            if not self.crashed:
                callback()

        handle = scheduler.schedule(delay, guarded)
        self._timers.add(handle)
        return handle

    def cancel_timer(self, handle: TimerHandle) -> bool:
        """Cancel a pending timer set by this process."""
        self._timers.discard(handle)
        return self._require_network().scheduler.cancel(handle)

    def cancel_all_timers(self) -> int:
        """Cancel every timer this process still has armed.

        The graceful-stop path: unlike :meth:`restart` it neither clears
        the crash flag nor resets subclass state, so a node can quiesce its
        scheduler before tearing the process down.
        """
        scheduler = self._require_network().scheduler
        cancelled = 0
        for handle in list(self._timers):
            if scheduler.cancel(handle):
                cancelled += 1
        self._timers.clear()
        return cancelled

    # -- fault control ----------------------------------------------------

    def crash(self) -> None:
        """Silently stop: no more sends, deliveries, or timer callbacks."""
        self.crashed = True

    def recover(self) -> None:
        """Resume after a crash. State is whatever the subclass preserved."""
        self.crashed = False

    def restart(self) -> None:
        """Reboot the process: cancel every pending timer, clear the crash
        flag, and give the subclass its :meth:`on_restart` reset hook.

        Unlike :meth:`recover`, timers armed before the crash do not fire
        after a restart — a rebooted process re-arms its own periodic work.
        """
        scheduler = self._require_network().scheduler
        for handle in list(self._timers):
            scheduler.cancel(handle)
        self._timers.clear()
        self.crashed = False
        self.on_restart()

    def on_restart(self) -> None:
        """Reset volatile state after :meth:`restart`. Subclasses override."""

    def __repr__(self) -> str:
        status = " CRASHED" if self.crashed else ""
        return f"<{type(self).__name__} {self.pid}{status}>"
