"""Latency models for the simulated network.

A latency model maps each message send to a delivery delay. Models draw from
a :class:`random.Random` owned by the network so that the whole simulation is
reproducible from a single seed.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod


class LatencyModel(ABC):
    """Strategy interface: produce a per-message one-way delay in seconds."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one delay. Must be strictly positive."""


class FixedLatency(LatencyModel):
    """Constant one-way delay; useful for analytically checkable tests."""

    def __init__(self, delay: float = 0.001) -> None:
        if delay <= 0:
            raise ValueError("delay must be positive")
        self.delay = delay

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"FixedLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.0005, high: float = 0.002) -> None:
        if low <= 0 or high < low:
            raise ValueError("require 0 < low <= high")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class LogNormalLatency(LatencyModel):
    """Heavy-tailed delay typical of a LAN under cross-traffic.

    Parameterised by the *median* delay and a shape ``sigma``; an optional
    ``cap`` bounds the tail so experiments terminate.
    """

    def __init__(
        self, median: float = 0.001, sigma: float = 0.4, cap: float | None = 0.05
    ) -> None:
        if median <= 0 or sigma <= 0:
            raise ValueError("median and sigma must be positive")
        self.median = median
        self.sigma = sigma
        self.cap = cap
        self._mu = math.log(median)

    def sample(self, rng: random.Random) -> float:
        delay = rng.lognormvariate(self._mu, self.sigma)
        if self.cap is not None:
            delay = min(delay, self.cap)
        return delay

    def __repr__(self) -> str:
        return f"LogNormalLatency(median={self.median}, sigma={self.sigma})"
