"""Deterministic discrete-event simulation substrate.

Every ITDOS experiment in this repository runs on a simulated network: a
single-threaded, seeded, discrete-event scheduler drives a set of
:class:`~repro.sim.process.Process` actors connected by a
:class:`~repro.sim.network.Network` that models point-to-point links,
IP-multicast groups, latency distributions, message loss, and partitions.

Determinism is a design requirement, not a convenience: the paper's replicas
must behave as deterministic state machines, and Byzantine experiments are
only debuggable when a failing run can be replayed bit-for-bit from its seed.
"""

from repro.sim.latency import (
    FixedLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
)
from repro.sim.multicast import MulticastGroup
from repro.sim.network import Network, NetworkConfig
from repro.sim.process import Process, ProcessId
from repro.sim.scheduler import Scheduler, TimerHandle
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = [
    "FixedLatency",
    "LatencyModel",
    "LogNormalLatency",
    "MulticastGroup",
    "Network",
    "NetworkConfig",
    "Process",
    "ProcessId",
    "Scheduler",
    "TimerHandle",
    "TraceEvent",
    "TraceRecorder",
    "UniformLatency",
]
