"""The simulated network.

Connects processes, applies a latency model, optional loss, and partitions,
and counts traffic for the experiments. The network also owns the
scheduler — one :class:`Network` is one self-contained simulation world.

Fault-model correspondence to the paper's assumptions (§2.2):

* "The network does not partition such that more than f of the replicated
  servers becomes unreachable" — partitions are injectable but experiments
  honour this bound except where they deliberately violate it.
* "If one correct process delivers a message, all correct processes will
  eventually deliver a message" — loss is modelled per-message; reliability
  above raw loss is the job of the protocol layers (retransmission in PBFT).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.obs.telemetry import NOOP_TELEMETRY, Telemetry
from repro.sim.latency import FixedLatency, LatencyModel
from repro.sim.multicast import MulticastGroup
from repro.sim.process import Process, ProcessId
from repro.sim.scheduler import Scheduler
from repro.sim.trace import TraceRecorder


@dataclass
class NetworkConfig:
    """Tunable behaviour of a simulation world."""

    seed: int = 0
    latency: LatencyModel = field(default_factory=FixedLatency)
    drop_probability: float = 0.0
    # Extra fixed cost per byte of payload, modelling serialisation +
    # transmission time (0 disables size-dependent delay).
    per_byte_delay: float = 0.0
    # Assert on every send that the payload round-trips through the real
    # wire codec (repro.net.wire) — catches object-graph leakage that only
    # a TCP backend would reject. Off by default: it encodes every message
    # twice, which the large benchmark runs cannot afford.
    check_wire: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        if self.per_byte_delay < 0:
            raise ValueError("per_byte_delay must be non-negative")


@dataclass
class TrafficStats:
    """Aggregate counters used by the benchmark harness."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    multicasts_sent: int = 0

    def reset(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self.multicasts_sent = 0


def payload_size(payload: Any) -> int:
    """Best-effort wire size of a payload.

    Payloads that know their encoded size expose ``wire_size()``; raw bytes
    report their length; everything else contributes a nominal header-sized
    constant so message *counts* still dominate cost models.
    """
    size_fn = getattr(payload, "wire_size", None)
    if callable(size_fn):
        return int(size_fn())
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    return 64


class Network:
    """A world of processes exchanging messages under a latency model."""

    def __init__(self, config: NetworkConfig | None = None) -> None:
        self.config = config or NetworkConfig()
        self.scheduler = Scheduler()
        self.rng = random.Random(self.config.seed)
        self.check_wire = self.config.check_wire
        # The delivery mechanism behind the fault/latency gates. The
        # simulator's own transport is the default; repro.net swaps in a
        # real-wire implementation through this same seam.
        from repro.net.transport import SimTransport

        self.transport: Any = SimTransport(self)
        self.processes: dict[ProcessId, Process] = {}
        self.groups: dict[str, MulticastGroup] = {}
        self.trace = TraceRecorder()
        self.trace.enabled = False
        self.stats = TrafficStats()
        self.telemetry: Telemetry = NOOP_TELEMETRY
        # Metric children cached at enable time so the wire hot path pays one
        # attribute load + method call per event, never a labels() lookup.
        self._m_sent = self._m_delivered = self._m_dropped = self._m_bytes = None
        # Pairs (a, b) that cannot currently communicate, stored symmetrically.
        self._partitioned: set[frozenset[ProcessId]] = set()
        # Transmission filters (firewall proxies): every filter must return
        # True for a message to pass; a False verdict drops it at the wire.
        self._filters: list = []
        # Wire-level adversary (repro.chaos): ``intercept(src, dst, payload,
        # size)`` may return None (pass through untouched) or a list of
        # ``(extra_delay, payload)`` deliveries — empty meaning the message
        # is swallowed. Orthogonal to filters/partitions, which model
        # *infrastructure*; the adversary models the §2.2 threat itself.
        self.adversary: Any = None
        # Post-delivery observer: called as ``on_deliver(src, dst, payload)``
        # after a receiver processed a message — the chaos InvariantChecker
        # hangs global safety assertions off this.
        self.on_deliver: Any = None

    # -- topology ----------------------------------------------------------

    def add_process(self, process: Process) -> Process:
        """Register a process; ids must be unique within the network."""
        if process.pid in self.processes:
            raise ValueError(f"duplicate process id {process.pid!r}")
        self.processes[process.pid] = process
        process.attach(self)
        return process

    def get_process(self, pid: ProcessId) -> Process:
        return self.processes[pid]

    def create_group(self, address: str) -> MulticastGroup:
        """Allocate a multicast address. Reallocation of a live address fails."""
        if address in self.groups:
            raise ValueError(f"multicast address {address!r} already allocated")
        group = MulticastGroup(address)
        self.groups[address] = group
        return group

    @property
    def multicast_addresses_allocated(self) -> int:
        """How many multicast addresses exist (experiment E2's resource)."""
        return len(self.groups)

    # -- partitions ---------------------------------------------------------

    def partition(self, side_a: set[ProcessId], side_b: set[ProcessId]) -> None:
        """Disconnect every pair (a, b) with a in ``side_a`` and b in ``side_b``."""
        for a in side_a:
            for b in side_b:
                if a != b:
                    self._partitioned.add(frozenset((a, b)))

    def heal(self) -> None:
        """Remove all partitions."""
        self._partitioned.clear()

    def is_partitioned(self, a: ProcessId, b: ProcessId) -> bool:
        return frozenset((a, b)) in self._partitioned

    # -- filters (enclave firewalls) ----------------------------------------

    def add_filter(self, fn) -> None:
        """Install a transmission filter ``fn(src, dst, payload) -> bool``.

        Filters model in-path enclave firewalls (the paper's IT-CORBA proxy,
        Figure 1): a message is dropped unless every filter admits it.
        """
        self._filters.append(fn)

    def remove_filter(self, fn) -> None:
        self._filters.remove(fn)

    # -- transmission -------------------------------------------------------

    def send(self, src: ProcessId, dst: ProcessId, payload: Any) -> None:
        """Point-to-point send with latency, loss, and partition checks."""
        self.stats.messages_sent += 1
        size = payload_size(payload)
        self.stats.bytes_sent += size
        self.trace.record(self.scheduler.now, "send", src, dst, payload)
        if self._m_sent is not None:
            self._m_sent.inc()
            self._m_bytes.inc(size)
        self._transmit(src, dst, payload, size)

    def multicast(self, src: ProcessId, group_addr: str, payload: Any) -> None:
        """Fan a payload out to every member of ``group_addr``.

        The sender receives its own copy iff it is a member — matching IP
        multicast loopback semantics, which the BFT layer relies on.
        """
        group = self.groups.get(group_addr)
        if group is None:
            raise KeyError(f"unknown multicast address {group_addr!r}")
        self.stats.multicasts_sent += 1
        size = payload_size(payload)
        self.trace.record(self.scheduler.now, "multicast", src, group_addr, payload)
        for member in sorted(group.members):
            self.stats.messages_sent += 1
            self.stats.bytes_sent += size
            if self._m_sent is not None:
                self._m_sent.inc()
                self._m_bytes.inc(size)
            self._transmit(src, member, payload, size)

    def _drop(self, src: ProcessId, dst: ProcessId, payload: Any, reason: str) -> None:
        self.stats.messages_dropped += 1
        self.trace.record(self.scheduler.now, "drop", src, dst, payload)
        if self._m_dropped is not None:
            self._m_dropped.labels(reason=reason).inc()

    def _transmit(self, src: ProcessId, dst: ProcessId, payload: Any, size: int) -> None:
        if dst not in self.processes:
            # Receiver gone (e.g. expelled then deregistered): drop silently,
            # as IP would.
            self._drop(src, dst, payload, "unreachable")
            return
        if self.is_partitioned(src, dst):
            self._drop(src, dst, payload, "partition")
            return
        if self.config.drop_probability and self.rng.random() < self.config.drop_probability:
            self._drop(src, dst, payload, "loss")
            return
        for admit in self._filters:
            if not admit(src, dst, payload):
                self._drop(src, dst, payload, "filter")
                return
        if self.adversary is not None:
            verdict = self.adversary.intercept(src, dst, payload, size)
            if verdict is not None:
                if not verdict:
                    self._drop(src, dst, payload, "chaos")
                    return
                for extra_delay, adjusted in verdict:
                    self._deliver_later(src, dst, adjusted, size, extra_delay)
                return
        self._deliver_later(src, dst, payload, size, 0.0)

    def _deliver_later(
        self,
        src: ProcessId,
        dst: ProcessId,
        payload: Any,
        size: int,
        extra_delay: float,
    ) -> None:
        """Hand a gate-surviving message to the transport seam."""
        self.transport.transmit(src, dst, payload, size, extra_delay)

    # -- running ------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.scheduler.now

    def run(self, **kwargs: Any) -> None:
        """Proxy to :meth:`Scheduler.run`."""
        self.scheduler.run(**kwargs)

    def enable_trace(self, capacity: int | None = None) -> TraceRecorder:
        """Turn on message tracing and return the recorder."""
        self.trace.enabled = True
        if capacity is not None:
            self.trace.capacity = capacity
        return self.trace

    def enable_telemetry(self) -> Telemetry:
        """Attach a live :class:`Telemetry` facade clocked by this world."""
        if not self.telemetry.enabled:
            self.telemetry = Telemetry(enabled=True, clock=lambda: self.scheduler.now)
            registry = self.telemetry.registry
            self._m_sent = registry.counter(
                "net_messages_sent_total", "Unicast transmissions (incl. multicast fan-out)"
            )
            self._m_delivered = registry.counter(
                "net_messages_delivered_total", "Messages handed to a receiver"
            )
            self._m_dropped = registry.counter(
                "net_messages_dropped_total", "Wire-level drops", labels=("reason",)
            )
            self._m_bytes = registry.counter(
                "net_bytes_sent_total", "Payload bytes put on the wire"
            )
        return self.telemetry
