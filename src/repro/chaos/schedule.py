"""Fault schedules and the scenario matrix.

A :class:`ChaosPlan` is the *declarative* half of a chaos run: per-message
fault probabilities, dynamic partition windows, and the set of equivocating
replicas, all active only inside a bounded time horizon. The plan is built
once per run from a seeded RNG, so the whole schedule is a pure function of
(scenario, seed) — the property every recorded violation relies on to
replay.

The horizon matters for liveness checking: the §2.2 fault model only
promises progress under *bounded* loss, so the runner asserts
eventual-reply liveness after the horizon passes and the adversary goes
quiet, never during the storm itself.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class PartitionWindow:
    """A dynamic partition: ``group_a`` cannot reach its complement during
    ``[start, end)``. Always heals — the §2.2 assumption is that partitions
    do not persist forever."""

    start: float
    end: float
    group_a: frozenset[str]

    def separates(self, src: str, dst: str) -> bool:
        return (src in self.group_a) != (dst in self.group_a)


@dataclass(frozen=True)
class ChaosPlan:
    """One run's fault schedule parameters (active while ``now < horizon``)."""

    horizon: float
    p_drop: float = 0.0
    p_duplicate: float = 0.0
    p_delay: float = 0.0
    p_reorder: float = 0.0
    p_corrupt: float = 0.0
    p_equivocate: float = 0.0
    # Delay faults add up to this much extra latency; reorder faults add up
    # to ``reorder_factor`` times more, enough for later traffic to overtake.
    max_extra_delay: float = 0.02
    reorder_factor: float = 8.0
    duplicate_delay: float = 0.01
    partitions: tuple[PartitionWindow, ...] = ()
    # Replicas whose *outbound* messages may be corrupted per-receiver —
    # the wire-level model of equivocation. At most f per domain, so the
    # paper's fault bound still holds and every safety invariant must too.
    equivocators: frozenset[str] = frozenset()
    # Processes never touched by the adversary (none by default).
    protect: frozenset[str] = frozenset()


def build_plan(
    rng: random.Random,
    horizon: float,
    processes: list[str],
    equivocators: frozenset[str] = frozenset(),
    intensity: float = 1.0,
) -> ChaosPlan:
    """Draw one seeded plan.

    Fault rates are drawn from bounded ranges scaled by ``intensity``; the
    bounds keep every schedule inside the fault model (loss is bounded, all
    partitions heal before the horizon), so liveness must still hold after
    the horizon.
    """
    scale = max(0.0, min(intensity, 1.0))
    windows: list[PartitionWindow] = []
    # Partition windows are on/off disturbances rather than per-message
    # rates, so intensity gates them entirely: zero means a clean wire.
    for _ in range(rng.randrange(0, 3) if scale > 0.0 else 0):
        start = rng.uniform(0.0, horizon * 0.7)
        length = rng.uniform(0.05, horizon * 0.25)
        # One side of the cut: a strict, small subset so no domain loses
        # more than f members to the partition at once.
        side = frozenset(rng.sample(processes, k=max(1, len(processes) // 5)))
        windows.append(
            PartitionWindow(start=start, end=min(start + length, horizon), group_a=side)
        )
    return ChaosPlan(
        horizon=horizon,
        p_drop=rng.uniform(0.0, 0.12) * scale,
        p_duplicate=rng.uniform(0.0, 0.10) * scale,
        p_delay=rng.uniform(0.0, 0.20) * scale,
        p_reorder=rng.uniform(0.0, 0.10) * scale,
        p_corrupt=rng.uniform(0.0, 0.06) * scale,
        p_equivocate=rng.uniform(0.0, 0.25) * scale if equivocators else 0.0,
        max_extra_delay=rng.uniform(0.005, 0.03),
        partitions=tuple(windows),
        equivocators=equivocators,
    )


@dataclass(frozen=True)
class Scenario:
    """One cell of the sweep matrix: the system configuration under test."""

    batch_size: int = 1
    pipeline_window: int = 0
    fast_wire: bool = True
    mid_run_recovery: bool = False
    forced_view_change: bool = False
    # E19: tentative reads at the client, one non-voting read-tier element,
    # the designated Byzantine element forging read watermarks, and a
    # scripted reader restart mid-storm (catch-up under fire).
    read_fastpath: bool = False
    # E20: a two-shard KV object space plus a coordinator domain running
    # BFT cross-shard commit, with an equivocating coordinator element, a
    # scripted participant partition mid-commit, and the ambient adversary
    # replaying torn prepares. The invariants: no shard commits what
    # another shard aborted, and atomicity holds at every intensity.
    cross_shard: bool = False

    @property
    def label(self) -> str:
        parts = [f"b{self.batch_size}", f"p{self.pipeline_window}"]
        parts.append("fw" if self.fast_wire else "slow")
        if self.mid_run_recovery:
            parts.append("rec")
        if self.forced_view_change:
            parts.append("vc")
        if self.read_fastpath:
            parts.append("rd")
        if self.cross_shard:
            parts.append("xs")
        return "-".join(parts)


#: The smoke slice: every matrix dimension exercised at least once, small
#: enough for the PR workflow (<60 s).
SMOKE_SCENARIOS: tuple[Scenario, ...] = (
    Scenario(),
    Scenario(batch_size=4, pipeline_window=4),
    Scenario(fast_wire=False),
    Scenario(batch_size=4, forced_view_change=True),
    Scenario(pipeline_window=4, mid_run_recovery=True),
    Scenario(
        batch_size=4,
        pipeline_window=4,
        fast_wire=False,
        mid_run_recovery=True,
        forced_view_change=True,
    ),
    Scenario(read_fastpath=True),
    Scenario(cross_shard=True),
)


def scenario_matrix(full: bool = False) -> tuple[Scenario, ...]:
    """The sweep matrix: the full cross product for nightly runs, the
    covering smoke slice otherwise."""
    if not full:
        return SMOKE_SCENARIOS
    cells = []
    for batch_size in (1, 4):
        for pipeline_window in (0, 4):
            for fast_wire in (True, False):
                for recovery in (False, True):
                    for view_change in (False, True):
                        cells.append(
                            Scenario(
                                batch_size=batch_size,
                                pipeline_window=pipeline_window,
                                fast_wire=fast_wire,
                                mid_run_recovery=recovery,
                                forced_view_change=view_change,
                            )
                        )
    # The read-fastpath column: every scripted disturbance combined with
    # tentative reads, a forging element, and a mid-storm reader restart.
    cells.extend(
        (
            Scenario(read_fastpath=True),
            Scenario(batch_size=4, pipeline_window=4, read_fastpath=True),
            Scenario(mid_run_recovery=True, read_fastpath=True),
            Scenario(forced_view_change=True, read_fastpath=True),
        )
    )
    # The cross-shard-commit column (E20): the atomic-commit invariants
    # under a Byzantine coordinator member, a mid-commit participant
    # partition, and torn-prepare replays from the ambient adversary.
    cells.extend(
        (
            Scenario(cross_shard=True),
            Scenario(batch_size=4, pipeline_window=4, cross_shard=True),
            Scenario(fast_wire=False, cross_shard=True),
        )
    )
    return tuple(cells)
