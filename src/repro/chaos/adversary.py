"""The wire-level adversary.

:class:`ChaosController` plugs into :attr:`Network.adversary` and applies a
:class:`~repro.chaos.schedule.ChaosPlan` to every transmission. All
randomness comes from the controller's own seeded RNG, and all messages are
frozen dataclasses, so corruption and equivocation build *modified copies*
— the original object may be aliased across a multicast fan-out and must
never be mutated in place.

Every fault that would fire is assigned a monotonically increasing *fault
index* before the applied/skipped decision, so a shrinking pass can re-run
the same seed with a ``disabled`` index set and greedily search for the
minimal subset of faults that still violates an invariant.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Any

from repro.chaos.schedule import ChaosPlan

#: Fields on honest traffic the adversary may corrupt. These are exactly
#: the fields protected end-to-end by authenticated encryption, signatures,
#: or content digests — flipping them models line noise / a meddling
#: network, which receivers must reject. Unprotected protocol fields are
#: off limits for *honest* senders: garbling those is indistinguishable
#: from the sender lying, which would silently breach the ≤f fault budget.
HONEST_CORRUPTIBLE_FIELDS = ("ciphertext", "signature", "payload")


@dataclass(frozen=True)
class FaultEvent:
    """One applied fault, recorded for the violation trace."""

    index: int
    time: float
    kind: str  # drop | duplicate | delay | reorder | corrupt | equivocate | partition
    src: str
    dst: str
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


def _flip_byte(data: bytes, rng: random.Random) -> bytes:
    if not data:
        return data
    index = rng.randrange(len(data))
    return data[:index] + bytes([data[index] ^ (1 + rng.randrange(255))]) + data[index + 1:]


def corrupt_payload(
    payload: Any, rng: random.Random, fields: tuple[str, ...] | None = None
) -> Any | None:
    """A corrupted *copy* of ``payload``, or None when nothing is corruptible.

    ``fields`` restricts corruption to the named attributes (the honest-
    traffic whitelist); None means any non-empty bytes field except ``auth``
    stamps — the equivocator mode, where the sender is within the Byzantine
    budget and may garble anything it signs itself.
    """
    if isinstance(payload, (bytes, bytearray)):
        flipped = _flip_byte(bytes(payload), rng)
        return flipped if flipped != payload else None
    if not dataclasses.is_dataclass(payload):
        return None
    candidates = []
    for spec in dataclasses.fields(payload):
        if fields is not None and spec.name not in fields:
            continue
        if fields is None and spec.name == "auth":
            continue
        value = getattr(payload, spec.name, None)
        if isinstance(value, bytes) and value:
            candidates.append((spec.name, value))
    if not candidates:
        return None
    name, value = candidates[rng.randrange(len(candidates))]
    try:
        return dataclasses.replace(payload, **{name: _flip_byte(value, rng)})
    except (TypeError, ValueError):
        return None


class ChaosController:
    """Seeded schedule adversary for one simulated network."""

    def __init__(
        self,
        network: Any,
        plan: ChaosPlan,
        seed: int = 0,
        disabled: frozenset[int] | set[int] = frozenset(),
    ) -> None:
        self.network = network
        self.plan = plan
        self.rng = random.Random(seed)
        self.disabled = set(disabled)
        self.events: list[FaultEvent] = []
        # Candidate faults considered so far (applied + disabled): the index
        # space the shrinker searches over.
        self.fault_candidates = 0
        self.applied: dict[str, int] = {}

    # -- bookkeeping -------------------------------------------------------

    def _apply(self, kind: str, src: str, dst: str, detail: str = "") -> bool:
        """Allocate the next fault index; True if the fault fires."""
        index = self.fault_candidates
        self.fault_candidates += 1
        if index in self.disabled:
            return False
        self.events.append(
            FaultEvent(
                index=index,
                time=self.network.now,
                kind=kind,
                src=src,
                dst=dst,
                detail=detail,
            )
        )
        self.applied[kind] = self.applied.get(kind, 0) + 1
        return True

    # -- the Network hook --------------------------------------------------

    def intercept(
        self, src: str, dst: str, payload: Any, size: int
    ) -> list[tuple[float, Any]] | None:
        """Decide the fate of one transmission.

        Returns None to pass the message through untouched, an empty list
        to swallow it, or a list of ``(extra_delay, payload)`` deliveries.
        """
        plan = self.plan
        now = self.network.now
        if now >= plan.horizon:
            return None
        if src in plan.protect or dst in plan.protect:
            return None
        for window in plan.partitions:
            if window.start <= now < window.end and window.separates(src, dst):
                if self._apply(
                    "partition", src, dst, f"{window.start:.3f}..{window.end:.3f}"
                ):
                    return []
        # One roll per fault family, drawn in a fixed order so the random
        # stream (and therefore fault indices) stays aligned between a full
        # run and its shrink probes for the unchanged prefix.
        rolls = [self.rng.random() for _ in range(6)]
        kind_name = type(payload).__name__
        adjusted = payload
        if (
            src in plan.equivocators
            and rolls[5] < plan.p_equivocate
            and self._apply("equivocate", src, dst, kind_name)
        ):
            variant = corrupt_payload(adjusted, self.rng, fields=None)
            if variant is not None:
                adjusted = variant
        if rolls[0] < plan.p_drop and self._apply("drop", src, dst, kind_name):
            return []
        if rolls[4] < plan.p_corrupt and self._apply("corrupt", src, dst, kind_name):
            variant = corrupt_payload(
                adjusted, self.rng, fields=HONEST_CORRUPTIBLE_FIELDS
            )
            if variant is not None:
                adjusted = variant
        extra = 0.0
        if rolls[2] < plan.p_delay and self._apply("delay", src, dst, kind_name):
            extra += self.rng.uniform(0.0, plan.max_extra_delay)
        if rolls[3] < plan.p_reorder and self._apply("reorder", src, dst, kind_name):
            # Enough added latency for later traffic on the link to overtake.
            extra += self.rng.uniform(1.0, plan.reorder_factor) * plan.max_extra_delay
        deliveries = [(extra, adjusted)]
        if rolls[1] < plan.p_duplicate and self._apply(
            "duplicate", src, dst, kind_name
        ):
            deliveries.append((extra + plan.duplicate_delay, adjusted))
        if adjusted is payload and extra == 0.0 and len(deliveries) == 1:
            return None  # untouched: keep the fast path's single delivery
        return deliveries
