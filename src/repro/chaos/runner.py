"""The schedule sweep: build a system, storm it, check it, shrink failures.

One :meth:`ScheduleRunner.run_one` call is fully deterministic in its
(scenario, seed, disabled) arguments: the simulated world, the workload
submission times, the fault schedule, and therefore every recorded event
are pure functions of those inputs. A violation report is thus a complete
reproduction recipe — re-running the same cell replays the same failure,
and the greedy shrinker exploits the determinism to search for the minimal
set of faults that still breaks the invariant.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Any

from repro.chaos.adversary import ChaosController, FaultEvent
from repro.chaos.invariants import InvariantChecker, InvariantViolation, Violation
from repro.chaos.schedule import PartitionWindow, Scenario, build_plan, scenario_matrix
from repro.giop import set_fast_wire
from repro.itdos.bootstrap import ItdosSystem
from repro.workloads.scenarios import (
    CalculatorServant,
    ShardKvServant,
    standard_repository,
)

#: Simulated seconds of adversarial schedule after the warm-up invocation.
CHAOS_WINDOW = 2.5
#: Simulated seconds of clean network granted for liveness to re-establish.
#: Generous on purpose: after a heavy storm the client retry schedule backs
#: off exponentially (BFT engine) on top of the SMIOP re-submission cap, and
#: queued invocations drain one at a time — but the run stops early the
#: moment every reply decides, so healthy cells never pay for the slack.
SETTLE_WINDOW = 30.0


@dataclass
class RunResult:
    """Outcome of one (scenario, seed) cell."""

    scenario: Scenario
    seed: int
    ok: bool = True
    violations: list[dict[str, Any]] = field(default_factory=list)
    fault_events: list[FaultEvent] = field(default_factory=list)
    fault_candidates: int = 0
    faults_applied: dict[str, int] = field(default_factory=dict)
    replies: int = 0
    requests: int = 0
    sim_time: float = 0.0
    deliveries: int = 0
    error: str | None = None
    # Ground truth for detector validation: the elements the plan allowed to
    # misbehave this run (the sampled equivocator set).
    true_faulty: list[str] = field(default_factory=list)
    # Detector verdict vs that ground truth (telemetry runs only).
    detection: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario.label,
            "seed": self.seed,
            "ok": self.ok,
            "violations": self.violations,
            "fault_events": [event.to_dict() for event in self.fault_events],
            "fault_candidates": self.fault_candidates,
            "faults_applied": self.faults_applied,
            "replies": self.replies,
            "requests": self.requests,
            "sim_time": self.sim_time,
            "deliveries": self.deliveries,
            "error": self.error,
            "true_faulty": self.true_faulty,
            "detection": self.detection,
        }


@dataclass
class SweepResult:
    """Every cell of one sweep, plus the shrunk repro of the first failure."""

    results: list[RunResult] = field(default_factory=list)
    shrunk: list[FaultEvent] | None = None

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def failures(self) -> list[RunResult]:
        return [result for result in self.results if not result.ok]

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "runs": len(self.results),
            "failures": [result.to_dict() for result in self.failures],
            "faults_applied": sum(
                sum(result.faults_applied.values()) for result in self.results
            ),
            "shrunk": (
                [event.to_dict() for event in self.shrunk]
                if self.shrunk is not None
                else None
            ),
        }


class ScheduleRunner:
    """Sweeps the scenario matrix over seeds, recording and shrinking."""

    def __init__(
        self,
        scenarios: tuple[Scenario, ...] | None = None,
        seeds: tuple[int, ...] = (0, 1),
        requests: int = 6,
        intensity: float = 1.0,
        shrink: bool = False,
        telemetry: bool = False,
        fault_kinds: str = "all",
        log: Any = None,
    ) -> None:
        if fault_kinds not in ("all", "benign"):
            raise ValueError(f"fault_kinds must be 'all' or 'benign', not {fault_kinds!r}")
        self.scenarios = scenarios if scenarios is not None else scenario_matrix()
        self.seeds = tuple(seeds)
        self.requests = requests
        self.intensity = intensity
        self.shrink_failures = shrink
        self.telemetry = telemetry
        # "benign" strips every Byzantine fault from the drawn plan (no
        # corruption, no equivocation, nobody faulty) while leaving the
        # drop/delay/duplicate/reorder/partition schedule untouched — the
        # honest-under-stress control cell for false-accusation checks.
        self.fault_kinds = fault_kinds
        self.log = log or (lambda message: None)
        # The telemetry facade of the most recent run_one, kept so callers
        # (the detect CLI, tests) can render the health board and audit log
        # after the cell's system has been torn down.
        self.last_telemetry: Any = None

    # -- sweep --------------------------------------------------------------

    def run(self) -> SweepResult:
        sweep = SweepResult()
        for scenario in self.scenarios:
            for seed in self.seeds:
                result = self.run_one(scenario, seed)
                sweep.results.append(result)
                status = "ok" if result.ok else "VIOLATION"
                self.log(
                    f"chaos {scenario.label} seed={seed}: {status} "
                    f"({sum(result.faults_applied.values())} faults, "
                    f"{result.replies}/{result.requests} replies)"
                )
                if not result.ok and sweep.shrunk is None and self.shrink_failures:
                    sweep.shrunk = self.shrink(scenario, seed)
        return sweep

    def shrink(
        self, scenario: Scenario, seed: int, max_probes: int = 64
    ) -> list[FaultEvent]:
        """Greedily minimise the fault schedule of a failing cell."""
        return _Shrinker(self, scenario, seed).shrink(max_probes)

    # -- one cell ------------------------------------------------------------

    def run_one(
        self,
        scenario: Scenario,
        seed: int,
        disabled: frozenset[int] | set[int] = frozenset(),
    ) -> RunResult:
        result = RunResult(scenario=scenario, seed=seed, requests=self.requests)
        previous_fast_wire = set_fast_wire(scenario.fast_wire)
        system = ItdosSystem(
            seed=seed,
            repository=standard_repository(),
            checkpoint_interval=8,
            telemetry=self.telemetry,
            bft_batch_size=scenario.batch_size,
            bft_batch_delay=0.005 if scenario.batch_size > 1 else 0.0,
            bft_pipeline_window=scenario.pipeline_window,
            read_fastpath=scenario.read_fastpath,
        )
        t = system.telemetry
        span = (
            t.begin("chaos.run", scenario=scenario.label, seed=seed)
            if t.enabled
            else None
        )
        try:
            self._run_cell(system, scenario, seed, disabled, result)
        except InvariantViolation as exc:
            result.ok = False
            result.violations.append(exc.violation.to_dict())
        except Exception as exc:  # noqa: BLE001 - an escape is itself a finding
            result.ok = False
            result.error = f"{type(exc).__name__}: {exc}"
            result.violations.append(
                {
                    "name": "unhandled-exception",
                    "process": "harness",
                    "detail": result.error,
                    "time": system.network.now,
                }
            )
        finally:
            set_fast_wire(previous_fast_wire)
            controller = system.network.adversary
            if controller is not None:
                result.fault_events = list(controller.events)
                result.fault_candidates = controller.fault_candidates
                result.faults_applied = dict(controller.applied)
            system.network.adversary = None
            system.network.on_deliver = None
            result.sim_time = system.network.now
            result.deliveries = system.network.stats.messages_delivered
            if span is not None:
                span.attrs["ok"] = result.ok
                span.attrs["faults"] = sum(result.faults_applied.values())
                t.end(span)
            if t.enabled:
                t.registry.counter(
                    "chaos_runs_total", "Chaos cells executed", labels=("outcome",)
                ).labels(outcome="ok" if result.ok else "violation").inc()
                for kind, count in result.faults_applied.items():
                    t.registry.counter(
                        "chaos_faults_total", "Faults injected", labels=("kind",)
                    ).labels(kind=kind).inc(count)
                result.detection = self._detection_verdict(result, t)
            self.last_telemetry = t if t.enabled else None
        return result

    @staticmethod
    def _detection_verdict(result: RunResult, t: Any) -> dict[str, Any]:
        """Score the run's detector output against the plan's ground truth.

        Recall is measured against the *active* faulty set — elements the
        plan sampled as faulty AND whose equivocation faults actually fired.
        A faulty element the adversary never exercised is indistinguishable
        from an honest one by any protocol-visible observer, so charging its
        silence as a miss would measure the schedule, not the detector.
        """
        truth = set(result.true_faulty)
        active = sorted(
            truth
            & {e.src for e in result.fault_events if e.kind == "equivocate"}
        )
        accused = sorted(t.detect.accused())
        suspected = sorted(t.detect.suspected())
        false_accusations = sorted(set(accused) - truth)
        detected = [pid for pid in active if pid in accused]
        chain_ok, chain_error = t.audit.verify()
        return {
            "active_faulty": active,
            "accused": accused,
            "suspected": suspected,
            "false_accusations": false_accusations,
            "detected": detected,
            "evidenced": [pid for pid in active if t.audit.against(pid)],
            "missed": [pid for pid in active if pid not in accused],
            "time_to_detect": {
                pid: t.detect.first_accused[pid]
                for pid in accused
                if pid in t.detect.first_accused
            },
            "scores": t.detect.scores(),
            "audit_entries": len(t.audit),
            "audit_hard": sum(1 for e in t.audit.entries if e.hard),
            "audit_chain_ok": chain_ok,
            "audit_chain_error": chain_error,
        }

    def _run_cell(
        self,
        system: ItdosSystem,
        scenario: Scenario,
        seed: int,
        disabled: frozenset[int] | set[int],
        result: RunResult,
    ) -> None:
        read_cell = scenario.read_fastpath
        cross_cell = scenario.cross_shard
        router = None
        shard_map = None
        if cross_cell:
            # E20 cell: two shard domains plus the coordinator domain, the
            # wire equivocator pinned to a coordinator element (the paper's
            # worst case for atomic commit: the decision-maker lies), a
            # scripted participant partition mid-commit, and the ambient
            # adversary's duplicates replaying torn prepares.
            shard_map = system.add_sharded_domain(
                "kv",
                shards=2,
                f=1,
                servants=lambda element: {b"kv": ShardKvServant()},
            )
            elements = [
                system.elements[pid]
                for pid in system.directory.domain(shard_map.domain_ids[0]).element_ids
            ]
        elif read_cell:
            from repro.chaos.byzantine import ForgedWatermarkElement, LaggingReader

            # E19 adversaries, deterministic by construction: element 1
            # forges read watermarks (and is also the wire equivocator, so
            # the corrupt budget stays at f), and the single read-tier
            # element lags its commit feed — stale but legal replies. The
            # benign control cell keeps the topology but every element runs
            # the honest code, matching the no-Byzantine contract.
            byzantine = self.fault_kinds != "benign"
            elements = system.add_server_domain(
                "calc",
                f=1,
                servants=lambda element: {b"calc": CalculatorServant()},
                byzantine={1: ForgedWatermarkElement} if byzantine else None,
                readers=1,
                reader_class=LaggingReader if byzantine else None,
            )
        else:
            elements = system.add_server_domain(
                "calc", f=1, servants=lambda element: {b"calc": CalculatorServant()}
            )
        client = system.add_client("alice")
        system.settle(0.5)  # GM coin-toss bootstrap
        if cross_cell:
            from repro.itdos.sharding import ShardRouter

            router = ShardRouter.for_system(system, client, shard_map)

            def key_on_shard(shard: int, tag: str) -> str:
                # First suffix landing the key on the wanted shard; pure
                # function of (tag, shard), so every replay agrees.
                n = 0
                while shard_map.shard_of(f"{tag}.{n}") != shard:
                    n += 1
                return f"{tag}.{n}"

            # Warm-up: handshake every shard connection plus the whole
            # coordinator path (nested prepare/commit) on a clean wire.
            router.invoke(key_on_shard(0, "warm"), "put", key_on_shard(0, "warm"), "w")
            warm_keys = [key_on_shard(0, "wtx"), key_on_shard(1, "wtx")]
            if router.transact(warm_keys, ["w", "w"]) != 1:
                raise AssertionError("warm-up transaction did not commit")
        else:
            ref = system.ref("calc", b"calc")
            stub = client.stub(ref)
            # Warm-up: Figure 3 handshake + first voted reply on a clean wire.
            if stub.add(1.0, 2.0) != 3.0:
                raise AssertionError("warm-up invocation returned a wrong result")

        # -- arm the adversary and the checker ------------------------------
        plan_rng = random.Random((seed << 8) ^ 0xC4A05)
        if cross_cell:
            txc_info = system.directory.domain(shard_map.coordinator_id)
            equivocators = frozenset({txc_info.element_ids[1]})
        elif read_cell:
            domain_info = system.directory.domain("calc")
            equivocators = frozenset({domain_info.element_ids[1]})
        else:
            domain_info = system.directory.domain("calc")
            equivocators = frozenset(
                plan_rng.sample(list(domain_info.element_ids), k=domain_info.f)
            )
        plan = build_plan(
            plan_rng,
            horizon=system.network.now + CHAOS_WINDOW,
            processes=sorted(system.network.processes),
            equivocators=equivocators,
            intensity=self.intensity,
        )
        if self.fault_kinds == "benign":
            # Same seeded schedule, Byzantine channel closed: the plan is
            # drawn identically (same RNG consumption) and then stripped, so
            # the control cell sees the very drop/delay storm the full cell
            # did — minus anything attributable.
            plan = dataclasses.replace(
                plan, p_corrupt=0.0, p_equivocate=0.0, equivocators=frozenset()
            )
            equivocators = frozenset()
        if cross_cell:
            # Mid-commit participant partition: one shard-1 element and one
            # coordinator element lose the network while transactions are
            # in flight, healing before the horizon. One member per domain
            # keeps the cut inside the f bound, so atomicity AND post-storm
            # liveness must both survive it. (A benign fault: the control
            # cell keeps it.)
            cut = frozenset(
                {
                    system.directory.domain(shard_map.domain_ids[1]).element_ids[3],
                    system.directory.domain(shard_map.coordinator_id).element_ids[3],
                }
            )
            window = PartitionWindow(
                start=plan.horizon - CHAOS_WINDOW * 0.65,
                end=plan.horizon - CHAOS_WINDOW * 0.4,
                group_a=cut,
            )
            plan = dataclasses.replace(plan, partitions=plan.partitions + (window,))
        result.true_faulty = sorted(equivocators)
        controller = ChaosController(
            system.network, plan, seed=seed ^ 0x5EED, disabled=disabled
        )
        checker = InvariantChecker(system, corrupt=equivocators)
        system.network.adversary = controller
        system.network.on_deliver = checker.on_deliver

        # -- workload: staggered async invocations through the storm --------
        # Read cells interleave fast-path reads (odd indices, ``mean`` is
        # declared read_only) with ordered writes; reads that hit divergent
        # tentative replies resubmit through ordering, so the same
        # eventual-reply liveness bar applies to every index. Cross-shard
        # cells interleave single-shard puts with two-shard transactions,
        # every second transaction carrying a poisoned key so the abort
        # path rides the same storm the commit path does.
        replies: dict[int, Any] = {}
        expected: dict[int, Any] = {}
        for i in range(self.requests):
            if cross_cell:
                expected[i] = (0 if i % 4 == 3 else 1) if i % 2 else None
            elif read_cell and i % 2:
                expected[i] = (float(i) + 1.0) / 2.0
            else:
                expected[i] = float(i) + 1.0

        def submit(i: int) -> None:
            record = lambda value, i=i: replies.__setitem__(i, value)  # noqa: E731
            if cross_cell:
                if i % 2:
                    first = f"!p{i}" if i % 4 == 3 else f"t{i}"
                    keys = [key_on_shard(0, first), key_on_shard(1, f"t{i}")]
                    router.submit_transact(keys, [f"v{i}", f"v{i}"], record)
                else:
                    router.submit(f"k{i}", "put", (f"k{i}", f"v{i}"), record)
                return
            if read_cell and i % 2:
                operation, args = "mean", ([float(i), 1.0],)
            else:
                operation, args = "add", (float(i), 1.0)
            client.async_invoke(ref, operation, args, record)

        step = CHAOS_WINDOW / (2 * max(1, self.requests))
        for i in range(self.requests):
            system.network.scheduler.schedule(0.01 + i * step, lambda i=i: submit(i))

        # -- scripted disturbances on top of the random schedule ------------
        recovering: list[Any] = []
        if read_cell:
            # Catch-up under fire: the reader reboots mid-storm and must
            # re-adopt the committed stream from the core tier while the
            # adversary is still active.
            reader = system.read_tier("calc")[0]
            system.network.scheduler.schedule(CHAOS_WINDOW * 0.45, reader.restart)
        if scenario.forced_view_change:
            primary = elements[0]
            system.network.scheduler.schedule(CHAOS_WINDOW * 0.35, primary.crash)
            system.network.scheduler.schedule(CHAOS_WINDOW * 0.55, primary.recover)
        if scenario.mid_run_recovery:
            victim = elements[2]

            def restart_and_recover() -> None:
                victim.restart()
                victim.recover_membership(
                    fresh_keys=True, on_complete=recovering.append
                )

            system.network.scheduler.schedule(
                CHAOS_WINDOW * 0.5, restart_and_recover
            )

        # -- storm, then clean settle, then liveness ------------------------
        system.network.run(until=plan.horizon)
        system.network.run(
            until=plan.horizon + SETTLE_WINDOW,
            stop_when=lambda: len(replies) == self.requests
            and (not scenario.mid_run_recovery or bool(recovering)),
        )
        if scenario.mid_run_recovery and not any(recovering):
            # Heavy schedules can exhaust the in-storm transfer attempts;
            # bounded loss means a retry on the clean network must succeed.
            done: list[bool] = []
            victim.recover_membership(fresh_keys=True, on_complete=done.append)
            system.run_until(lambda: bool(done))
            if not done or not done[0]:
                raise InvariantViolation(
                    Violation(
                        name="liveness",
                        process=victim.pid,
                        detail="mid-run recovery never completed on a clean network",
                        time=system.network.now,
                    )
                )
        pending = {
            i: expected[i] for i in expected if i not in replies
        }
        result.replies = len(replies)
        checker.final(pending)
        for i, value in replies.items():
            want = expected[i]
            wrong = (
                abs(value - want) > 1e-6
                if isinstance(want, float) and isinstance(value, (int, float))
                else value != want
            )
            if wrong:
                # The strongest vote-consistency oracle: the runner knows the
                # semantics of the workload, so a decided-but-wrong value is
                # caught even if the quorum arithmetic looked plausible.
                raise InvariantViolation(
                    Violation(
                        name="vote-wrong-value",
                        process=client.pid,
                        detail=f"request {i}: voted {value!r}, "
                        f"expected {expected[i]!r}",
                        time=system.network.now,
                    )
                )


# -- shrinking ---------------------------------------------------------------


def _chunks(items: list[int], size: int) -> list[list[int]]:
    return [items[i : i + size] for i in range(0, len(items), size)]


class _Shrinker:
    """Greedy delta debugging over fault indices.

    Re-runs the same (scenario, seed) with growing ``disabled`` sets; a
    probe "succeeds" when the violation persists without the disabled
    faults. Fault indices are allocated in message order, so the index
    space of probe runs stays aligned with the original for the unchanged
    prefix — enough for a greedy search (each accepted probe is re-verified
    by construction, since acceptance *is* the probe run failing).
    """

    def __init__(self, runner: ScheduleRunner, scenario: Scenario, seed: int) -> None:
        self.runner = runner
        self.scenario = scenario
        self.seed = seed
        self.probes = 0

    def shrink(self, max_probes: int = 64) -> list[FaultEvent]:
        base = self.runner.run_one(self.scenario, self.seed)
        if base.ok:
            return []
        active = sorted(event.index for event in base.fault_events)
        disabled: set[int] = set()
        last = base
        chunk = max(1, len(active) // 2)
        while self.probes < max_probes:
            progress = False
            for block in _chunks(active, chunk):
                if self.probes >= max_probes:
                    break
                trial = disabled | set(block)
                probe = self.runner.run_one(self.scenario, self.seed, disabled=trial)
                self.probes += 1
                if not probe.ok:
                    disabled = trial
                    active = [index for index in active if index not in trial]
                    last = probe
                    progress = True
            if chunk == 1 and not progress:
                break  # 1-minimal: no single remaining fault is removable
            chunk = max(1, chunk // 2)
        remaining = set(active)
        return [event for event in last.fault_events if event.index in remaining]
