"""Deterministic Byzantine schedule fuzzing (repro.chaos).

The paper's claim is that ITDOS stays correct while up to f elements per
domain are Byzantine — but hand-written fault behaviours
(:mod:`repro.itdos.faults`) only cover faults someone thought of. This
subsystem adversarially explores message *schedules* instead: a seeded
:class:`ChaosController` sits in the simulated wire and composes per-link
drop / delay / duplicate / reorder, dynamic partitions, wire-level
corruption, and per-receiver equivocation by up to f replicas; after every
delivered message a global :class:`InvariantChecker` asserts the system's
safety predicates across all processes, and a :class:`ScheduleRunner`
sweeps a scenario matrix over many seeds, shrinking any failing schedule
to a minimal reproduction.

Everything is deterministic: one (scenario, seed) pair fully determines
the event schedule, so every recorded violation replays exactly.
"""

from repro.chaos.adversary import ChaosController, FaultEvent, corrupt_payload
from repro.chaos.invariants import InvariantChecker, InvariantViolation, Violation
from repro.chaos.runner import RunResult, ScheduleRunner, SweepResult
from repro.chaos.schedule import ChaosPlan, PartitionWindow, Scenario, scenario_matrix

__all__ = [
    "ChaosController",
    "ChaosPlan",
    "FaultEvent",
    "InvariantChecker",
    "InvariantViolation",
    "PartitionWindow",
    "RunResult",
    "Scenario",
    "ScheduleRunner",
    "SweepResult",
    "Violation",
    "corrupt_payload",
    "scenario_matrix",
]
