"""Application-level Byzantine elements for the chaos harness.

The wire adversary (:mod:`repro.chaos.adversary`) models line noise and
signed-garbage equivocation; these classes model a *protocol-correct lie*:
an element inside the f budget that follows every rule except one. They
plug into :meth:`ItdosSystem.add_server_domain` via the ``byzantine`` /
``reader_class`` hooks, so a chaos cell's ground truth names exactly which
pids run them.
"""

from __future__ import annotations

from repro.itdos.messages import ReadRequest
from repro.itdos.readtier import ReadOnlyElement
from repro.itdos.replica import ItdosServerElement


class ForgedWatermarkElement(ItdosServerElement):
    """A core element whose tentative reads lie about the commit watermark.

    Alternates between *futuristic* (claims a prefix nobody committed yet)
    and *stale* (claims an old prefix while serving current state) — both
    validly signed, so only the client's 2f+1 matching-(watermark, value)
    quorum stands between the lie and a decided read. The chaos invariant
    ``read-decided-beyond-commit`` asserts the quorum always wins.
    """

    #: How far ahead the forged watermark claims to be.
    FORGE_AHEAD = 7

    def _serve_read(self, src: str, envelope: ReadRequest) -> None:
        queue = self.queue
        true_processed = queue.processed_count
        if envelope.read_id % 2:
            queue.processed_count = true_processed + self.FORGE_AHEAD
        else:
            queue.processed_count = max(0, true_processed - self.FORGE_AHEAD)
        try:
            super()._serve_read(src, envelope)
        finally:
            queue.processed_count = true_processed


class LaggingReader(ReadOnlyElement):
    """A read-tier element that silently drops most of its commit feed.

    Models a reader that fell far behind (slow disk, long GC pause): it
    keeps serving reads from its stale prefix — legal, the watermark tag
    makes staleness explicit — until the feed gap forces a full catch-up.
    """

    #: Apply only every ``KEEP_EVERY``-th feed index; drop the rest.
    KEEP_EVERY = 4

    def _handle_commit_feed(self, src, feed) -> None:  # noqa: ANN001
        if feed.index % self.KEEP_EVERY:
            return
        super()._handle_commit_feed(src, feed)
