"""Global safety invariants, asserted after every delivered message.

The checker is an omniscient observer: it reads every process's internal
state directly (journals, dispatch logs, key stores, checkpoints) and
raises :class:`InvariantViolation` the moment any cross-process safety
predicate breaks — so a recorded violation trace ends at the exact
delivery that broke the system, not at whatever later symptom a test
would have noticed.

Predicates (the paper's safety story, made executable):

* **prefix agreement** — every replica's committed-order journal agrees on
  the batch digest at each sequence number it executed (PBFT safety).
* **no duplicate execution** — per (connection, request id), a servant
  dispatches at most once, ids strictly increasing (§3.6).
* **vote consistency** — a decided reply vote has ≥ f+1 distinct
  supporters, at least one of them outside the corrupt set.
* **key-epoch fence monotonicity** — per connection, the membership epoch
  and fence floor never regress, and no held key generation predates the
  floor (§3.5 + recovery fencing).
* **checkpoint/watermark consistency** — stable_seq ≤ last_executed ≤
  high watermark per replica; stable snapshots agree across a domain at
  equal sequence numbers.
* **read staleness bound** — a tentative read reply from an honest element
  never claims a watermark beyond the domain's committed prefix (the
  furthest any honest core element has appended), and every decided
  fast-path read at a client sits within that bound too: a read can be
  stale, never futuristic (E19).
* **cross-shard atomicity** — no transaction is ever recorded as
  committed by one honest process and aborted by another, across shards
  and the coordinator domain alike (E20's atomic-commit safety bar).

Liveness (eventual reply under bounded loss) is asserted by the runner
once the schedule's horizon passes, via :meth:`InvariantChecker.final`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.digests import digest


class InvariantViolation(AssertionError):
    """A global safety predicate failed; carries the structured violation."""

    def __init__(self, violation: "Violation") -> None:
        super().__init__(str(violation))
        self.violation = violation


@dataclass(frozen=True)
class Violation:
    name: str
    process: str
    detail: str
    time: float

    def __str__(self) -> str:
        return f"[{self.name}] at {self.process} (t={self.time:.4f}): {self.detail}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "process": self.process,
            "detail": self.detail,
            "time": self.time,
        }


class InvariantChecker:
    """Asserts the global predicates over one :class:`ItdosSystem`."""

    def __init__(
        self,
        system: Any,
        corrupt: frozenset[str] | set[str] = frozenset(),
        deep_check_interval: int = 4,
    ) -> None:
        self.system = system
        self.corrupt = set(corrupt)
        self.violations: list[Violation] = []
        self.checks_run = 0
        # Full-state scans (key stores, watermarks, checkpoints, votes) run
        # every ``deep_check_interval`` deliveries; the incremental journal
        # and dispatch scans run on every delivery.
        self.deep_check_interval = max(1, deep_check_interval)
        self._events = 0
        # Reference committed-order digests, first writer wins.
        self._order_ref: dict[tuple[str, int], bytes] = {}
        self._journal_pos: dict[str, int] = {}
        self._dispatch_pos: dict[str, int] = {}
        self._last_dispatch: dict[tuple[str, int], int] = {}
        self._epoch_floor: dict[tuple[str, int], tuple[int, int]] = {}
        self._checkpoint_ref: dict[tuple[str, int], bytes] = {}
        self._read_decisions_pos: dict[tuple[str, int], int] = {}

    # -- wiring -------------------------------------------------------------

    def _replicas(self) -> list[tuple[str, Any]]:
        """(domain_id, replica) for every ordering participant."""
        out = [("gm", gm) for gm in self.system.gm_elements]
        out.extend(
            (element.domain_id, element)
            for element in self.system.elements.values()
        )
        return out

    def _key_stores(self) -> list[Any]:
        procs = list(self.system.elements.values())
        procs.extend(self.system.clients.values())
        return [p for p in procs if getattr(p, "key_store", None) is not None]

    def _fail(self, name: str, process: str, detail: str) -> None:
        violation = Violation(
            name=name, process=process, detail=detail, time=self.system.network.now
        )
        self.violations.append(violation)
        raise InvariantViolation(violation)

    # -- the Network.on_deliver hook ----------------------------------------

    def on_deliver(self, src: str, dst: str, payload: Any) -> None:
        self._events += 1
        self.checks_run += 1
        self.check_order_journals()
        self.check_dispatch_logs()
        self.check_read_reply(src, payload)
        if self._events % self.deep_check_interval == 0:
            self.deep_check()

    def deep_check(self) -> None:
        self.check_key_fences()
        self.check_watermarks()
        self.check_checkpoints()
        self.check_vote_consistency()
        self.check_read_decisions()
        self.check_cross_shard_atomicity()

    # -- individual predicates ----------------------------------------------

    def check_order_journals(self) -> None:
        """Committed-sequence prefix agreement across each domain."""
        for domain_id, replica in self._replicas():
            journal = replica.order_journal
            pos = self._journal_pos.get(replica.pid, 0)
            if len(journal) <= pos:
                continue
            for seq, batch_digest in journal[pos:]:
                ref = self._order_ref.setdefault((domain_id, seq), batch_digest)
                if ref != batch_digest:
                    self._fail(
                        "order-divergence",
                        replica.pid,
                        f"seq {seq}: {batch_digest.hex()[:16]} != {ref.hex()[:16]}",
                    )
            self._journal_pos[replica.pid] = len(journal)

    def check_dispatch_logs(self) -> None:
        """No duplicate servant execution per (connection, request id)."""
        for element in self.system.elements.values():
            log = element.dispatch_log
            pos = self._dispatch_pos.get(element.pid, 0)
            if len(log) <= pos:
                continue
            for conn_id, request_id in log[pos:]:
                key = (element.pid, conn_id)
                last = self._last_dispatch.get(key, 0)
                if request_id <= last:
                    self._fail(
                        "duplicate-dispatch",
                        element.pid,
                        f"conn {conn_id}: request {request_id} after {last}",
                    )
                self._last_dispatch[key] = request_id
            self._dispatch_pos[element.pid] = len(log)

    def check_key_fences(self) -> None:
        """Per-connection epoch/fence monotonicity; no fenced keys held."""
        for proc in self._key_stores():
            for conn_id, keys in proc.key_store.connections.items():
                state_key = (proc.pid, conn_id)
                prev_epoch, prev_floor = self._epoch_floor.get(state_key, (0, 0))
                if keys.current_epoch < prev_epoch or keys.fence_floor < prev_floor:
                    self._fail(
                        "fence-regression",
                        proc.pid,
                        f"conn {conn_id}: epoch {keys.current_epoch} floor "
                        f"{keys.fence_floor} after epoch {prev_epoch} floor {prev_floor}",
                    )
                self._epoch_floor[state_key] = (keys.current_epoch, keys.fence_floor)
                for key_id, epoch in keys.epoch_of.items():
                    if epoch < keys.fence_floor:
                        self._fail(
                            "fenced-key-held",
                            proc.pid,
                            f"conn {conn_id}: generation {key_id} from epoch "
                            f"{epoch} < floor {keys.fence_floor}",
                        )

    def check_watermarks(self) -> None:
        """stable_seq ≤ last_executed ≤ high watermark at every replica."""
        for _, replica in self._replicas():
            if replica.stable_seq > replica.last_executed:
                self._fail(
                    "watermark-inversion",
                    replica.pid,
                    f"stable {replica.stable_seq} > executed {replica.last_executed}",
                )
            if replica.last_executed > replica.high_watermark:
                self._fail(
                    "watermark-overrun",
                    replica.pid,
                    f"executed {replica.last_executed} > high {replica.high_watermark}",
                )

    def check_checkpoints(self) -> None:
        """Stable snapshots agree across a domain at equal sequence numbers."""
        for domain_id, replica in self._replicas():
            if replica.stable_seq <= 0:
                continue
            snapshot_digest = digest(replica._stable_snapshot)
            key = (domain_id, replica.stable_seq)
            ref = self._checkpoint_ref.setdefault(key, snapshot_digest)
            if ref != snapshot_digest:
                self._fail(
                    "checkpoint-divergence",
                    replica.pid,
                    f"stable seq {replica.stable_seq}: "
                    f"{snapshot_digest.hex()[:16]} != {ref.hex()[:16]}",
                )

    def check_vote_consistency(self) -> None:
        """Every decided reply vote has ≥ f+1 distinct supporters, not all
        of them from the corrupt set."""
        for client in self.system.clients.values():
            for conn_id, connection in client.endpoint.connections.items():
                decision = connection.voter._decided
                if decision is None or not decision.decided:
                    continue
                supporters = set(decision.supporters)
                needed = connection.target.f + 1
                if len(supporters) < needed:
                    self._fail(
                        "vote-thin-quorum",
                        client.pid,
                        f"conn {conn_id}: {len(supporters)} supporters < {needed}",
                    )
                if supporters and supporters <= self.corrupt:
                    self._fail(
                        "vote-all-corrupt",
                        client.pid,
                        f"conn {conn_id}: supporters {sorted(supporters)} all corrupt",
                    )

    def _committed_prefix(self, domain_id: str) -> int | None:
        """The furthest any *honest* core element has appended — the upper
        bound on what any honest tentative read can have seen."""
        info = self.system.directory.domains.get(domain_id)
        if info is None:
            return None
        positions = [
            self.system.elements[pid].queue.total_appended
            for pid in info.element_ids
            if pid not in self.corrupt and pid in self.system.elements
        ]
        return max(positions) if positions else None

    def check_read_reply(self, src: str, payload: Any) -> None:
        """An honest element's tentative read never outruns the committed
        prefix (E19: reads may be stale, never futuristic)."""
        from repro.itdos.messages import ReadReply

        if not isinstance(payload, ReadReply):
            return
        if src != payload.sender or src in self.corrupt:
            return
        element = self.system.elements.get(src)
        if element is None:
            return
        bound = self._committed_prefix(element.domain_id)
        if bound is not None and payload.watermark > bound:
            self._fail(
                "read-beyond-commit",
                src,
                f"read {payload.read_id}: watermark {payload.watermark} "
                f"> committed prefix {bound}",
            )

    def check_read_decisions(self) -> None:
        """Every decided fast-path read sits within the committed prefix.

        Byzantine core elements may serve forged watermarks; the 2f+1
        matching-(watermark, value) quorum must keep any such forgery from
        ever *deciding* a read beyond what the honest domain committed.
        """
        for client in self.system.clients.values():
            for conn_id, connection in client.endpoint.connections.items():
                decisions = getattr(connection, "read_decisions", None)
                if not decisions:
                    continue
                state_key = (client.pid, conn_id)
                pos = self._read_decisions_pos.get(state_key, 0)
                if len(decisions) <= pos:
                    continue
                bound = self._committed_prefix(connection.target.domain_id)
                for read_id, watermark in decisions[pos:]:
                    if bound is not None and watermark > bound:
                        self._fail(
                            "read-decided-beyond-commit",
                            client.pid,
                            f"conn {conn_id} read {read_id}: decided watermark "
                            f"{watermark} > committed prefix {bound}",
                        )
                self._read_decisions_pos[state_key] = len(decisions)

    def check_cross_shard_atomicity(self) -> None:
        """No honest process both commits and aborts the same transaction.

        Every participant servant and every coordinator element records its
        transaction outcomes in a ``txn_decisions`` map (E20). Atomicity of
        BFT cross-shard commit means the union of those maps — across
        shards, across replicas within a shard, and across the coordinator
        domain — never assigns one transaction two different decisions.
        A Byzantine coordinator member may *try* to send commit to one
        shard and abort to another; the participants' f+1 request voters
        must keep any such forgery from ever being recorded.
        """
        seen: dict[str, tuple[str, str]] = {}  # txn -> (decision, where)
        for element in self.system.elements.values():
            if element.pid in self.corrupt:
                continue
            adapter = getattr(getattr(element, "orb", None), "adapter", None)
            if adapter is None:
                continue
            for servant in adapter._servants.values():
                decisions = getattr(servant, "txn_decisions", None)
                if not decisions:
                    continue
                for txn, decision in decisions.items():
                    prior = seen.get(txn)
                    if prior is None:
                        seen[txn] = (decision, element.pid)
                    elif prior[0] != decision:
                        self._fail(
                            "cross-shard-atomicity",
                            element.pid,
                            f"txn {txn}: {decision!r} here but "
                            f"{prior[0]!r} at {prior[1]}",
                        )

    # -- end-of-run checks ---------------------------------------------------

    def final(self, pending: dict[Any, Any] | None = None) -> None:
        """Run every predicate once more; ``pending`` maps still-unanswered
        invocation labels to their submission context (eventual-reply
        liveness under a bounded-loss schedule)."""
        self.check_order_journals()
        self.check_dispatch_logs()
        self.deep_check()
        if pending:
            labels = ", ".join(str(k) for k in list(pending)[:8])
            self._fail(
                "liveness",
                "client",
                f"{len(pending)} invocation(s) never decided: {labels}",
            )
