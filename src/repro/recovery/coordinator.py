"""The per-element recovery coordinator.

Drives the two halves of recovery for one
:class:`~repro.itdos.replica.ItdosServerElement`:

1. **Rejoin** — send the signed :class:`RejoinPetition` through the Group
   Manager's ordering and wait for the replicated verdict. A successful
   verdict means the GM has re-added the element to domain membership and
   rotated every affected connection key to a new membership epoch.
2. **Queue state transfer** — fetch each peer's ``MessageQueue.snapshot()``
   plus its stable PBFT checkpoint, cross-validate the response
   fingerprints across peers, adopt a matching set, and replay the
   *buffered ordered tail*: every payload the element's own ordering
   executed while it was diverged (buffered by
   ``ItdosServerElement._bft_execute``) whose sequence number postdates the
   adopted snapshot.

The cross-validation quorum starts at ``2f+1`` matching responses — enough
to guarantee the adopted snapshot is both *correct* (≥ f+1 honest) and
*fresh* (intersects every commit quorum). If the domain cannot produce that
many matching answers (peers mid-checkpoint, or f of them mute), later
rounds degrade to the correctness minimum ``f+1``, accepting possible
staleness; staleness is safe because adoption additionally requires the
peer's execution position to cover our buffering anchor, so the snapshot
plus our replayed tail reconstructs a prefix-consistent queue.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.crypto.digests import digest
from repro.itdos.queuestate import QueueOverflow
from repro.recovery.messages import (
    QueueStateRequest,
    QueueStateResponse,
    RejoinPetition,
    petition_body,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.itdos.replica import ItdosServerElement

#: Verdicts after which the joiner is (again) a member in good standing.
ADMITTED_VERDICTS = (b"READMITTED", b"REFRESHED", b"OK")


class RecoveryCoordinator:
    """Petition → fetch → cross-validate → restore → replay, with retries."""

    def __init__(self, element: "ItdosServerElement") -> None:
        self.element = element
        self.active = False
        self.succeeded = False
        self.attempt = 0
        self.last_verdict: bytes | None = None
        self.transfers_completed = 0
        self.recovered_at: float | None = None
        self.bytes_transferred = 0
        self._petition_nonce = 0
        self._fresh_keys = False
        self._responses: dict[str, QueueStateResponse] = {}
        self._timer: Any = None
        self._span: Any = None
        self._on_complete: Callable[[bool], None] | None = None

    # -- rejoin petition ---------------------------------------------------

    def _next_nonce(self) -> int:
        # Monotone even across a restart that wiped the counter: anchor on
        # simulated time in microseconds, tiebroken by the local counter.
        now_us = int(self.element.now * 1_000_000)
        self._petition_nonce = max(self._petition_nonce + 1, now_us)
        return self._petition_nonce

    def make_petition(self, fresh_keys: bool = False) -> RejoinPetition:
        element = self.element
        nonce = self._next_nonce()
        body = petition_body(element.pid, element.domain_id, fresh_keys, nonce)
        return RejoinPetition(
            element=element.pid,
            domain_id=element.domain_id,
            fresh_keys=bool(fresh_keys),
            nonce=nonce,
            signature=element.signer.sign(body),
        )

    def petition(
        self,
        callback: Callable[[bytes], None] | None = None,
        fresh_keys: bool = False,
    ) -> None:
        """Send the signed rejoin handshake (membership only, no transfer)."""
        element = self.element
        t = element.telemetry
        request = self.make_petition(fresh_keys)
        span = (
            t.begin("recovery.petition", pid=element.pid, fresh=bool(fresh_keys))
            if t.enabled
            else None
        )

        def on_verdict(verdict: bytes) -> None:
            self.last_verdict = verdict
            if span is not None:
                span.attrs["verdict"] = verdict.decode("ascii", "replace")
                t.end(span)
            if callback is not None:
                callback(verdict)

        with t.use(span.ctx if span is not None else None):
            element.endpoint.gm_engine.invoke(request.to_payload(), on_verdict)

    # -- full recovery -----------------------------------------------------

    def begin(
        self,
        callback: Callable[[bytes], None] | None = None,
        fresh_keys: bool = False,
        on_complete: Callable[[bool], None] | None = None,
    ) -> None:
        """Rejoin, then (queue mode) transfer state until caught up.

        ``callback`` receives the GM's petition verdict; ``on_complete``
        fires once the whole recovery finishes (``True``) or every transfer
        attempt is exhausted (``False``). In object mode the petition alone
        completes recovery — servant state is repaired by the ordinary BFT
        checkpoint/state-transfer machinery, not by queue adoption.
        """
        element = self.element
        if self.active:
            return
        self.active = True
        self.succeeded = False
        self.attempt = 0
        self._fresh_keys = bool(fresh_keys)
        self._on_complete = on_complete
        t = element.telemetry
        self._span = (
            t.begin("recovery.recover", pid=element.pid, fresh=bool(fresh_keys))
            if t.enabled
            else None
        )
        if element.state_mode == "queue":
            # From here on the ordered tail is buffered, so anything our own
            # ordering executes during recovery can be replayed on top of
            # whatever snapshot we adopt.
            element._mark_diverged()

        def on_verdict(verdict: bytes) -> None:
            if callback is not None:
                callback(verdict)
            if verdict not in ADMITTED_VERDICTS:
                self._finish(False)
            elif element.state_mode == "queue":
                self._start_transfer()
            else:
                self._finish(True)

        with t.use(self._span.ctx if self._span is not None else None):
            self.petition(callback=on_verdict, fresh_keys=fresh_keys)

    # -- queue state transfer ----------------------------------------------

    def _start_transfer(self) -> None:
        element = self.element
        self.attempt += 1
        if self.attempt > element.directory.recovery_max_attempts:
            self._finish(False)
            return
        self._responses = {}
        t = element.telemetry
        if t.enabled:
            t.point(
                "recovery.transfer",
                parent=self._span.ctx if self._span is not None else None,
                pid=element.pid,
                attempt=self.attempt,
                quorum=self._required_matching(),
            )
        request = QueueStateRequest(
            requester=element.pid, domain_id=element.domain_id, attempt=self.attempt
        )
        for peer in element.domain_info.element_ids:
            if peer != element.pid:
                element.send(peer, request)
        # Later rounds wait longer — peers may be settling a checkpoint.
        window = element.directory.recovery_fetch_window * self.attempt
        self._timer = element.set_timer(window, self._window_closed)

    def _required_matching(self) -> int:
        info = self.element.domain_info
        if self.attempt <= self.element.directory.recovery_full_quorum_attempts:
            return min(2 * info.f + 1, info.n - 1)
        return info.f + 1

    def handle_response(self, src: str, response: QueueStateResponse) -> None:
        element = self.element
        if not self.active or response.attempt != self.attempt:
            return  # stale round
        if src != response.sender or src not in element.domain_info.element_ids:
            return
        if src == element.pid or response.domain_id != element.domain_id:
            return
        self._responses[src] = response
        # Adopt as soon as some fingerprint reaches the quorum — no need to
        # sit out the rest of the window.
        required = self._required_matching()
        if any(len(g) >= required for g in self._groups().values()):
            if self._timer is not None:
                element.cancel_timer(self._timer)
                self._timer = None
            self._try_adopt()

    def _groups(self) -> dict[bytes, list[QueueStateResponse]]:
        groups: dict[bytes, list[QueueStateResponse]] = {}
        for response in self._responses.values():
            groups.setdefault(response.fingerprint(), []).append(response)
        return groups

    def _window_closed(self) -> None:
        self._timer = None
        self._try_adopt()

    def _try_adopt(self) -> None:
        if not self.active:
            return
        element = self.element
        required = self._required_matching()
        anchor = (
            element._recovery_anchor
            if element._recovery_anchor is not None
            else element.last_executed
        )
        best: QueueStateResponse | None = None
        for members in self._groups().values():
            if len(members) < required:
                continue
            candidate = members[0]
            if candidate.last_executed < anchor:
                # Snapshot predates our buffering anchor: our buffer cannot
                # bridge the gap between it and our own execution position.
                continue
            if best is None or candidate.last_executed > best.last_executed:
                best = candidate
        if best is not None and self._adopt(best):
            self._finish(True)
        else:
            self._start_transfer()

    def _adopt(self, response: QueueStateResponse) -> bool:
        element = self.element
        t = element.telemetry
        # The checkpoint certificate must check out before anything mutates:
        # 2f+1 signed-by-membership CheckpointMsgs over the peer's snapshot.
        if response.stable_seq > 0 and not element.verify_checkpoint_proof(
            response.stable_seq,
            digest(response.checkpoint_snapshot),
            response.checkpoint_proof,
        ):
            return False
        try:
            element.queue.restore(response.snapshot)
        except (ValueError, QueueOverflow):
            return False  # retry round will overwrite any partial state
        element._append_chain = response.chain
        # Replay the buffered ordered tail past the snapshot position.
        replayed = 0
        for seq, payload in element._recovery_buffer:
            if seq <= response.last_executed:
                continue
            try:
                element.queue.append(seq, payload)
            except (ValueError, QueueOverflow):
                return False
            element._append_chain = digest(element._append_chain + payload)
            replayed += 1
        if response.last_executed > element.last_executed:
            element.last_executed = response.last_executed
        element.diverged = False
        element._clear_recovery_buffer()
        # Adopt the peer's stable checkpoint *after* un-diverging so any
        # execution it unblocks appends to the queue instead of the buffer.
        if response.stable_seq > element.stable_seq:
            element.adopt_stable_checkpoint(
                response.stable_seq,
                response.checkpoint_snapshot,
                response.checkpoint_proof,
            )
        self.transfers_completed += 1
        self.recovered_at = element.now
        self.bytes_transferred += response.wire_size()
        if t.enabled:
            t.point(
                "recovery.restore",
                parent=self._span.ctx if self._span is not None else None,
                pid=element.pid,
                source=response.sender,
                adopted_exec=response.last_executed,
                replayed=replayed,
                snapshot_bytes=len(response.snapshot),
            )
            t.registry.counter(
                "recovery_transfers_total", "Queue state transfers completed"
            ).inc()
        element._pump()
        return True

    def _finish(self, success: bool) -> None:
        self.active = False
        self.succeeded = success
        # Snapshots are the largest payloads in the system; keeping the
        # final round's responses parked would hold every peer's queue
        # image until the next recovery.
        self._responses = {}
        if self._timer is not None:
            self.element.cancel_timer(self._timer)
            self._timer = None
        t = self.element.telemetry
        if self._span is not None:
            self._span.attrs["outcome"] = "recovered" if success else "gave_up"
            t.end(self._span)
            self._span = None
        if t.enabled and not success:
            t.registry.counter(
                "recovery_failures_total", "Recoveries that exhausted every attempt"
            ).inc()
        on_complete, self._on_complete = self._on_complete, None
        if on_complete is not None:
            on_complete(success)
