"""repro.recovery — replica readmission and state-transfer recovery.

The paper's prototype stops at expulsion ("replacement remains to be
implemented", §4); its message-queue state machine exists precisely so that
recovery does *not* require full object-state transfer (§3.1, §3.5). This
subsystem supplies the missing half of the membership lifecycle:

* :class:`~repro.recovery.messages.RejoinPetition` — the signed rejoin
  handshake a repaired element sends the Group Manager (mirroring Figure
  3's connection handshake);
* :class:`~repro.recovery.coordinator.RecoveryCoordinator` — drives the
  petition and the message-queue state transfer: fetch
  ``MessageQueue.snapshot()`` plus the stable PBFT checkpoint from peers,
  cross-validate digests, restore, and replay the buffered ordered tail;
* :class:`~repro.recovery.proactive.ProactiveRecoveryScheduler` — the
  periodic restart→rejoin→state-transfer rotation that bounds how long an
  undetected adversary can dwell on any element.

Key-epoch rotation (every membership change advances the epoch; receivers
fence out generations more than one epoch old) lives in
:mod:`repro.itdos.keys` and the Group Manager, with the protocol surface
defined here.
"""

from repro.recovery.coordinator import RecoveryCoordinator
from repro.recovery.messages import (
    QueueStateRequest,
    QueueStateResponse,
    RejoinPetition,
    petition_body,
)
from repro.recovery.proactive import ProactiveRecoveryScheduler

__all__ = [
    "ProactiveRecoveryScheduler",
    "QueueStateRequest",
    "QueueStateResponse",
    "RecoveryCoordinator",
    "RejoinPetition",
    "petition_body",
]
