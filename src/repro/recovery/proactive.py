"""Proactive recovery: periodically restart elements before they fail.

Proactive recovery (Castro & Liskov 2000; the paper's §4 "survivability
architecture" direction) bounds the *dwell time* of an undetected intruder:
even if an adversary silently controls an element, a periodic
restart→rejoin→state-transfer rotation evicts it, and the rejoin's
``fresh_keys`` petition rotates the membership key epoch so any exfiltrated
connection keys die with the old epoch.

The scheduler round-robins the domain's elements on the simulation
scheduler. Each cycle: ``crash()`` the element, wait ``downtime``,
``restart()`` it (wiping volatile state), then run the full
:meth:`~repro.itdos.replica.ItdosServerElement.recover_membership` path.
Elements already crashed or mid-recovery are skipped, so a slow recovery is
never preempted by its own scheduler. With ``period`` spacing between
restarts, at most one element is down at a time — the domain keeps its
``2f+1`` live quorum throughout (for f ≥ 1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.itdos.replica import ItdosServerElement
    from repro.sim.network import Network


class ProactiveRecoveryScheduler:
    """Round-robin restart→rejoin→state-transfer over a domain's elements."""

    def __init__(
        self,
        network: "Network",
        elements: list["ItdosServerElement"],
        period: float = 5.0,
        downtime: float = 0.05,
    ) -> None:
        if not elements:
            raise ValueError("proactive recovery needs at least one element")
        if downtime >= period:
            raise ValueError("downtime must be shorter than the rotation period")
        self.network = network
        self.elements = list(elements)
        self.period = period
        self.downtime = downtime
        self.active = False
        self.cycles_started = 0
        self.cycles_completed = 0
        # (time, pid, phase) with phase in {"restart", "recovered", "failed"}.
        self.events: list[tuple[float, str, str]] = []
        self._index = 0
        self._handle: Any = None

    def start(self) -> None:
        if self.active:
            return
        self.active = True
        self._handle = self.network.scheduler.schedule(self.period, self._tick)

    def stop(self) -> None:
        self.active = False
        if self._handle is not None:
            self.network.scheduler.cancel(self._handle)
            self._handle = None

    # -- one rotation step -------------------------------------------------

    def _tick(self) -> None:
        if not self.active:
            return
        element = self._next_element()
        if element is not None:
            self._recover_one(element)
        self._handle = self.network.scheduler.schedule(self.period, self._tick)

    def _next_element(self) -> "ItdosServerElement | None":
        for _ in range(len(self.elements)):
            element = self.elements[self._index % len(self.elements)]
            self._index += 1
            if not element.crashed and not element.recovery.active:
                return element
        return None

    def _recover_one(self, element: "ItdosServerElement") -> None:
        t = element.telemetry
        span = t.begin("recovery.proactive", pid=element.pid) if t.enabled else None
        self.cycles_started += 1
        self.events.append((self.network.scheduler.now, element.pid, "restart"))
        element.crash()

        def reboot() -> None:
            element.restart()

            def done(success: bool) -> None:
                self.cycles_completed += 1
                phase = "recovered" if success else "failed"
                self.events.append((self.network.scheduler.now, element.pid, phase))
                if span is not None:
                    span.attrs["outcome"] = phase
                    verdict = element.recovery.last_verdict or b""
                    span.attrs["verdict"] = verdict.decode("ascii", "replace")
                    t.end(span)

            with t.use(span.ctx if span is not None else None):
                element.recover_membership(fresh_keys=True, on_complete=done)

        # Scheduled on the raw network scheduler, not element.set_timer: the
        # element is crashed and must still come back.
        self.network.scheduler.schedule(self.downtime, reboot)
