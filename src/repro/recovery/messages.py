"""Recovery protocol messages.

Two message groups:

* the **rejoin handshake** — a :class:`RejoinPetition` travels through the
  Group Manager's ordering exactly like Figure 3's ``open_request``, but is
  additionally *signed* with the element's registered RSA key and carries a
  monotone nonce, so the GM can check that the petitioner controls the
  element identity and that an old petition is not being replayed;
* **queue state transfer** — point-to-point
  :class:`QueueStateRequest`/:class:`QueueStateResponse` between fellow
  domain elements. The response bundles the peer's live
  ``MessageQueue.snapshot()``, its rolling append chain, and its stable
  PBFT checkpoint (snapshot + 2f+1 certificate), letting the joiner
  cross-validate the fetched state against the BFT layer before adopting.

The petition payload kind is registered with
:func:`repro.itdos.messages.register_payload_kind` at import, so the
existing ``parse_payload`` dispatch decodes it without this package being a
dependency of :mod:`repro.itdos.messages`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.crypto.digests import digest
from repro.crypto.encoding import canonical_bytes
from repro.itdos.messages import encode_payload, register_payload_kind


def petition_body(element: str, domain_id: str, fresh_keys: bool, nonce: int) -> bytes:
    """The exact bytes a rejoin petitioner signs."""
    return canonical_bytes(
        {
            "purpose": "rejoin",
            "element": element,
            "domain": domain_id,
            "fresh_keys": bool(fresh_keys),
            "nonce": nonce,
        }
    )


@dataclass(frozen=True)
class RejoinPetition:
    """Signed request to re-enter (or key-refresh) a replication domain.

    ``fresh_keys`` distinguishes the proactive-recovery case: an element in
    good standing that just restarted asks for a key-epoch rotation even
    though it was never expelled, so any keys exfiltrated before the
    restart die with the old epoch.
    """

    element: str
    domain_id: str
    fresh_keys: bool
    nonce: int
    signature: bytes

    KIND = "rejoin_petition"

    def body(self) -> bytes:
        return petition_body(self.element, self.domain_id, self.fresh_keys, self.nonce)

    def to_payload(self) -> bytes:
        return encode_payload(
            self.KIND,
            {
                "element": self.element,
                "domain_id": self.domain_id,
                "fresh_keys": self.fresh_keys,
                "nonce": self.nonce,
                "signature": self.signature,
            },
        )

    @staticmethod
    def from_fields(fields: dict[str, Any]) -> "RejoinPetition":
        return RejoinPetition(
            element=fields["element"],
            domain_id=fields["domain_id"],
            fresh_keys=fields["fresh_keys"],
            nonce=fields["nonce"],
            signature=fields["signature"],
        )

    def trace_label(self) -> str:
        return f"rejoin_petition({self.element},fresh={self.fresh_keys})"


register_payload_kind(RejoinPetition.KIND, RejoinPetition.from_fields)


@dataclass(frozen=True)
class QueueStateRequest:
    """Ask a fellow domain element for its current queue state."""

    requester: str
    domain_id: str
    attempt: int

    def trace_label(self) -> str:
        return f"queue_state_request({self.requester},attempt={self.attempt})"


@dataclass(frozen=True)
class QueueStateResponse:
    """One peer's view of the replicated queue, anchored to its checkpoint.

    ``checkpoint_proof`` is the 2f+1 :class:`~repro.bft.messages.CheckpointMsg`
    certificate for ``(stable_seq, checkpoint_snapshot)`` — the recovery
    "checkpoint fetch RPC". Proof *contents* differ per peer (different
    quorum subsets), so :meth:`fingerprint` covers everything except it.
    """

    sender: str
    domain_id: str
    attempt: int
    appended: int  # payloads ever ordered into the queue
    chain: bytes  # rolling digest of the ordered history
    snapshot: bytes  # MessageQueue.snapshot()
    last_executed: int  # the peer's BFT execution position
    stable_seq: int
    checkpoint_snapshot: bytes
    checkpoint_proof: tuple = ()

    def fingerprint(self) -> bytes:
        """Digest used to cross-validate responses across peers."""
        return digest(
            canonical_bytes(
                {
                    "appended": self.appended,
                    "chain": self.chain,
                    "snapshot": digest(self.snapshot),
                    "last_executed": self.last_executed,
                    "stable_seq": self.stable_seq,
                    "checkpoint": digest(self.checkpoint_snapshot),
                }
            )
        )

    def wire_size(self) -> int:
        return 96 + len(self.snapshot) + len(self.checkpoint_snapshot)

    def trace_label(self) -> str:
        return (
            f"queue_state_response(i={self.sender},exec={self.last_executed},"
            f"{len(self.snapshot)}B)"
        )
