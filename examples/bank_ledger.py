#!/usr/bin/env python3
"""Bank + audit ledger: nested invocations between replication domains.

The Bank domain's ``audited_deposit`` makes a *nested* invocation on the
Ledger domain (§3.1): each of the four bank elements acts as a client of the
ledger; the ledger's elements vote the four request copies down to one
execution; their replies travel back through the bank's own totally ordered
channel and resume the parked servant — the paper's "two-thread" technique,
realised with servant generators.

Run:  python examples/bank_ledger.py
"""

from repro.orb.errors import UserException
from repro.workloads.scenarios import build_bank_system


def main() -> None:
    system = build_bank_system(f=1, seed=7)
    print("Two replication domains, each 3f+1 = 4 elements:")
    for domain_id in ("bank", "ledger"):
        info = system.directory.domain(domain_id)
        print(f"  {domain_id:7s}: {list(info.element_ids)}")

    alice = system.add_client("alice")
    bank = alice.stub(system.ref("bank", b"bank"))

    print("\nPlain deposits (single-domain):")
    print(f"  deposit('alice', 100) -> balance {bank.deposit('alice', 100.0)}")
    print(f"  deposit('alice',  50) -> balance {bank.deposit('alice', 50.0)}")

    print("\nAudited deposits (bank domain nests a call to the ledger domain):")
    print(f"  audited_deposit('alice', 25) -> balance {bank.audited_deposit('alice', 25.0)}")
    print(f"  audited_deposit('bob',  300) -> balance {bank.audited_deposit('bob', 300.0)}")

    print("\nWithdrawals, including a voted user exception:")
    print(f"  withdraw('alice', 75) -> balance {bank.withdraw('alice', 75.0)}")
    try:
        bank.withdraw("bob", 1_000_000.0)
    except UserException as exc:
        print(f"  withdraw('bob', 1e6)  -> {exc.exception_id}: {exc.description}")

    system.settle(2.0)
    print("\nConsistency across the fleet:")
    for element in system.domain_elements("ledger"):
        servant = element.orb.adapter.servant_for(b"ledger")
        print(f"  {element.pid}: {servant.count()} audit entries -> {servant.entries}")
    balances = {
        element.pid: element.orb.adapter.servant_for(b"bank").balances
        for element in system.domain_elements("bank")
    }
    agreed = len({str(sorted(b.items())) for b in balances.values()}) == 1
    print(f"  all bank elements agree on balances: {agreed}")
    print(f"  balances: {next(iter(balances.values()))}")


if __name__ == "__main__":
    main()
