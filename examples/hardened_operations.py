#!/usr/bin/env python3
"""Hardened operations: the reproduction's extensions working together.

Three features the paper lists as open problems (§3.5, §4), implemented and
exercised in one run:

1. **Periodic rekeying** — communication keys rotate on a schedule, so even
   an undetected compromise only reads a bounded window of traffic;
2. **Large-object transfer** — big replies travel as voted 32-byte digests
   plus a single body fetch, instead of 3f+1 full copies;
3. **Replica readmission** — an expelled element, once repaired, petitions
   the Group Manager, is rekeyed back in, and recovers its state through
   the ordinary state-transfer path.

Run:  python examples/hardened_operations.py
"""

from repro.itdos.bootstrap import ItdosSystem
from repro.itdos.faults import LyingElement
from repro.metrics.collectors import snapshot_network
from repro.workloads.scenarios import KvStoreServant, standard_repository


def main() -> None:
    system = ItdosSystem(
        seed=19,
        repository=standard_repository(),
        heterogeneous=False,  # object-mode state digests must agree
        checkpoint_interval=4,
        large_reply_threshold=1024,
        rekey_interval=0.5,
    )
    system.add_server_domain(
        "vault",
        f=1,
        servants=lambda element: {b"vault": KvStoreServant()},
        state_mode="object",
        app_state_fn=lambda element: (
            lambda: element.orb.adapter.servant_for(b"vault").get_state()
        ),
        app_restore_fn=lambda element: (
            lambda state: element.orb.adapter.servant_for(b"vault").set_state(state)
        ),
        byzantine={2: LyingElement},  # vault-e2 is compromised
    )
    client = system.add_client("operator")
    stub = client.stub(system.ref("vault", b"vault"))

    print("1) Periodic rekeying")
    stub.put("doc-1", "classified")
    first_generation = client.key_store.current_key(1).key_id
    system.settle(1.6)  # three rekey epochs
    stub.put("doc-2", "more classified")
    later_generation = client.key_store.current_key(1).key_id
    print(f"   key generation {first_generation} -> {later_generation} after 1.6 s "
          "(rotated on schedule; stale keys are useless to an eavesdropper)\n")

    print("2) Large-object transfer (digest voting + single body fetch)")
    blob = "B" * 50_000
    stub.put("blob", blob)
    before = snapshot_network(system.network)
    fetched = stub.get("blob")
    delta = before.delta(snapshot_network(system.network))
    connection = next(iter(client.endpoint.connections.values()))
    print(f"   fetched {len(fetched):,} B correctly; wire bytes {delta.bytes_sent:,} "
          f"(full-body voting would ship ~4 copies); body fetches: "
          f"{connection.body_fetches}\n")

    print("3) Detect -> expel -> repair -> readmit")
    stub.size()  # the liar corrupts this int -> detected and reported
    system.settle(4.0)
    liar = system.elements["vault-e2"]
    print(f"   expelled: {sorted(system.gm_elements[0].state.expelled)}")
    liar.repaired = True
    verdicts = []
    liar.petition_readmission(verdicts.append)
    system.run_until(lambda: bool(verdicts))
    print(f"   petition after repair: {verdicts[0].decode()}")
    for i in range(8):
        stub.put(f"post-{i}", "data")
    system.settle(6.0)
    servant = liar.orb.adapter.servant_for(b"vault")
    print(f"   vault-e2 recovered: serving again={not liar.diverged}, "
          f"state entries={servant.size()} (repaired via state transfer)")
    print(f"   service total size: {stub.size()} entries, all voted correct")


if __name__ == "__main__":
    main()
