#!/usr/bin/env python3
"""Quickstart: a singleton client invoking a replicated, heterogeneous server.

This is Figure 1 of the paper in ~40 lines: a CORBA client holds an object
reference to a *replication domain* of 3f+1 = 4 elements running on four
different (simulated) platforms. The ITDOS middleware transparently:

1. asks the Group Manager to establish a virtual connection (Figure 3),
2. combines threshold key shares into the communication key,
3. encrypts the request and submits it into the domain's BFT ordering,
4. votes the four (inexactly equal) replies and returns one result.

Run:  python examples/quickstart.py
"""

from repro.workloads.scenarios import build_calc_system


def main() -> None:
    system = build_calc_system(f=1, seed=42)
    print("Deployment:")
    print(f"  Group Manager : {list(system.directory.gm_domain.element_ids)}")
    calc = system.directory.domain("calc")
    print(f"  'calc' domain : {list(calc.element_ids)}  (f={calc.f})")
    for pid in calc.element_ids:
        platform = system.directory.platform_of(pid)
        print(f"      {pid}: {platform.name} ({platform.byte_order}-endian)")

    client = system.add_client("alice")
    ref = system.ref("calc", b"calc")
    print(f"\nObject reference: {ref.stringify()[:60]}...")
    stub = client.stub(ref)

    print("\nInvocations (each one is ordered by PBFT and voted):")
    print(f"  add(2, 3)              = {stub.add(2.0, 3.0)}")
    print(f"  divide(1, 3)           = {stub.divide(1.0, 3.0)!r}")
    print(f"  mean([1.1, 2.2, 3.3])  = {stub.mean([1.1, 2.2, 3.3])!r}")
    stub.store(10.0)
    stub.store(20.0)
    print(f"  history()              = {stub.history()}")

    conn_id = next(iter(client.endpoint.connections))
    key = client.key_store.current_key(conn_id)
    print("\nTransport facts:")
    print(f"  connection id          = {conn_id}")
    print(f"  communication key id   = {key.key_id} (threshold-generated)")
    print(f"  open_requests sent     = {client.endpoint.open_requests_sent} "
          "(connection reused across all calls)")
    print(f"  simulated time elapsed = {system.network.now * 1000:.2f} ms")
    print(f"  network messages sent  = {system.network.stats.messages_sent}")


if __name__ == "__main__":
    main()
