#!/usr/bin/env python3
"""Intrusion drill: detect, prove, expel, repair, and readmit a replica.

The full §3.6 story — plus the recovery half the paper left as future
work — in one run:

1. element ``calc-e2`` is compromised (returns corrupted values);
2. the client's voter masks the lie (f+1 honest agreement) *and* identifies
   the dissenter;
3. the client sends the Group Manager a ``change_request`` whose proof is
   the set of signed replies;
4. the GM verifies the signatures, unmarshals the replies with its own
   marshalling engine, re-votes, and expels the element by rekeying every
   communication group without it;
5. the expelled element can no longer decrypt traffic; service continues;
6. a malicious client then tries to expel a *correct* element with forged
   proof — and is denied;
7. ``calc-e2`` is repaired and sends the Group Manager a *signed* rejoin
   petition; the GM readmits it and rotates every connection key to a new
   membership epoch;
8. the readmitted element catches up by adopting a cross-validated message
   queue snapshot from 2f+1 peers — no full object-state copy — and votes
   with the majority again;
9. key epochs: the pre-expulsion keys the intruder may have exfiltrated
   are fenced out, even though the element is a member once more.

Run:  python examples/intrusion_drill.py
"""

from repro.itdos.faults import LyingElement, forged_change_request
from repro.workloads.scenarios import CalculatorServant, standard_repository
from repro.itdos.bootstrap import ItdosSystem


def main() -> None:
    system = ItdosSystem(seed=5, repository=standard_repository())
    system.add_server_domain(
        "calc",
        f=1,
        servants=lambda element: {b"calc": CalculatorServant()},
        byzantine={2: LyingElement},  # calc-e2 is compromised
    )
    print("Domain 'calc' (f=1):", list(system.directory.domain("calc").element_ids))
    print("  calc-e2 is COMPROMISED: it corrupts every result it returns.\n")

    client = system.add_client("alice")
    stub = client.stub(system.ref("calc", b"calc"))

    print("Step 1-2: invoke; the voter masks and detects the faulty value")
    result = stub.add(2.0, 3.0)
    print(f"  add(2, 3) = {result}   <- correct despite the intrusion")

    system.settle(3.0)
    reports = client.endpoint.change_requests_sent
    print(f"\nStep 3: client filed {len(reports)} change_request(s)")
    print(f"  accused: {list(reports[0].accused)}, proof: "
          f"{len(reports[0].proof)} signed replies")

    print("\nStep 4: Group Manager verdicts")
    for gm in system.gm_elements:
        print(f"  {gm.pid}: expelled={sorted(gm.state.expelled)} "
              f"keys_issued={len(gm.keys_issued)}")

    conn_id = next(iter(client.endpoint.connections))
    print("\nStep 5: rekey lockout")
    print(f"  client's current key generation: "
          f"{client.key_store.current_key(conn_id).key_id}")
    expelled = system.elements["calc-e2"]
    expelled_key = expelled.key_store.current_key(conn_id)
    print(f"  calc-e2's key generation      : "
          f"{expelled_key.key_id if expelled_key else 'none'} (stale)")
    served_before = len(expelled.dispatched)
    print(f"  service continues: add(10, 20) = {stub.add(10.0, 20.0)}")
    system.settle(1.0)
    print(f"  calc-e2 processed {len(expelled.dispatched) - served_before} of the "
          "new (rekeyed) requests")

    print("\nStep 6: a malicious client forges proof against calc-e0")
    mallory = system.add_client("mallory")
    mallory.stub(system.ref("calc", b"calc")).add(1.0, 1.0)
    verdicts = []
    mallory.endpoint.gm_engine.invoke(
        forged_change_request("mallory", "calc", ("calc-e0",)).to_payload(),
        verdicts.append,
    )
    system.run_until(lambda: bool(verdicts))
    print(f"  Group Manager verdict: {verdicts[0].decode()}")
    print(f"  calc-e0 still serving: add(7, 7) = {stub.add(7.0, 7.0)}")

    print("\nStep 7: calc-e2 is repaired and petitions to rejoin")
    expelled.repaired = True
    for i in range(3):
        stub.add(float(i), 100.0)  # traffic calc-e2 misses while expelled
    rejoin_verdicts: list[bytes] = []
    done: list[bool] = []
    expelled.recover_membership(
        callback=rejoin_verdicts.append, on_complete=done.append
    )
    system.run_until(lambda: bool(done))
    print(f"  signed rejoin petition -> GM verdict: {rejoin_verdicts[0].decode()}")
    gm = system.gm_elements[0]
    print(f"  GM membership: expelled={sorted(gm.state.expelled)} "
          f"readmitted={gm.readmissions}")

    print("\nStep 8: state transfer from the message queue (no object copy)")
    recovery = expelled.recovery
    print(f"  adopted a peer queue snapshot: {recovery.transfers_completed} "
          f"transfer(s), {recovery.bytes_transferred} bytes on the wire")
    print(f"  calc-e2 diverged: {expelled.diverged}  (back in sync)")
    served_before = len(expelled.dispatched)
    print(f"  add(6, 7) = {stub.add(6.0, 7.0)}")
    system.settle(1.0)
    print(f"  calc-e2 dispatched {len(expelled.dispatched) - served_before} "
          "new request(s) and votes with the majority")

    print("\nStep 9: key epochs fence out the intruder's old keys")
    print(f"  membership key epoch: {gm.state.key_epoch} "
          "(bumped at expulsion AND readmission)")
    honest = system.elements["calc-e0"]
    keys = honest.key_store.connections[conn_id]
    fenced = sorted(
        key_id for key_id, epoch in keys.epoch_of.items()
        if epoch < keys.fence_floor
    )
    live = sorted(keys.keys)
    print(f"  calc-e0 retains generations {live}; pre-expulsion generations "
          "are gone —")
    print("  anything the intruder exfiltrated before expulsion is useless, "
          f"fenced={not fenced}")


if __name__ == "__main__":
    main()
