#!/usr/bin/env python3
"""Intrusion drill: detect, prove, expel, and rekey a compromised replica.

The full §3.6 story in one run:

1. element ``calc-e2`` is compromised (returns corrupted values);
2. the client's voter masks the lie (f+1 honest agreement) *and* identifies
   the dissenter;
3. the client sends the Group Manager a ``change_request`` whose proof is
   the set of signed replies;
4. the GM verifies the signatures, unmarshals the replies with its own
   marshalling engine, re-votes, and expels the element by rekeying every
   communication group without it;
5. the expelled element can no longer decrypt traffic; service continues;
6. a malicious client then tries to expel a *correct* element with forged
   proof — and is denied.

Run:  python examples/intrusion_drill.py
"""

from repro.itdos.faults import LyingElement, forged_change_request
from repro.workloads.scenarios import CalculatorServant, standard_repository
from repro.itdos.bootstrap import ItdosSystem


def main() -> None:
    system = ItdosSystem(seed=5, repository=standard_repository())
    system.add_server_domain(
        "calc",
        f=1,
        servants=lambda element: {b"calc": CalculatorServant()},
        byzantine={2: LyingElement},  # calc-e2 is compromised
    )
    print("Domain 'calc' (f=1):", list(system.directory.domain("calc").element_ids))
    print("  calc-e2 is COMPROMISED: it corrupts every result it returns.\n")

    client = system.add_client("alice")
    stub = client.stub(system.ref("calc", b"calc"))

    print("Step 1-2: invoke; the voter masks and detects the faulty value")
    result = stub.add(2.0, 3.0)
    print(f"  add(2, 3) = {result}   <- correct despite the intrusion")

    system.settle(3.0)
    reports = client.endpoint.change_requests_sent
    print(f"\nStep 3: client filed {len(reports)} change_request(s)")
    print(f"  accused: {list(reports[0].accused)}, proof: "
          f"{len(reports[0].proof)} signed replies")

    print("\nStep 4: Group Manager verdicts")
    for gm in system.gm_elements:
        print(f"  {gm.pid}: expelled={sorted(gm.state.expelled)} "
              f"keys_issued={len(gm.keys_issued)}")

    conn_id = next(iter(client.endpoint.connections))
    print("\nStep 5: rekey lockout")
    print(f"  client's current key generation: "
          f"{client.key_store.current_key(conn_id).key_id}")
    expelled = system.elements["calc-e2"]
    expelled_key = expelled.key_store.current_key(conn_id)
    print(f"  calc-e2's key generation      : "
          f"{expelled_key.key_id if expelled_key else 'none'} (stale)")
    served_before = len(expelled.dispatched)
    print(f"  service continues: add(10, 20) = {stub.add(10.0, 20.0)}")
    system.settle(1.0)
    print(f"  calc-e2 processed {len(expelled.dispatched) - served_before} of the "
          "new (rekeyed) requests")

    print("\nStep 6: a malicious client forges proof against calc-e0")
    mallory = system.add_client("mallory")
    mallory.stub(system.ref("calc", b"calc")).add(1.0, 1.0)
    verdicts = []
    mallory.endpoint.gm_engine.invoke(
        forged_change_request("mallory", "calc", ("calc-e0",)).to_payload(),
        verdicts.append,
    )
    system.run_until(lambda: bool(verdicts))
    print(f"  Group Manager verdict: {verdicts[0].decode()}")
    print(f"  calc-e0 still serving: add(7, 7) = {stub.add(7.0, 7.0)}")


if __name__ == "__main__":
    main()
