#!/usr/bin/env python3
"""Sensor fusion on heterogeneous replicas: why voting must be inexact.

Four replicas on four platforms fuse the same sensor readings. Their
floating-point pipelines differ in low-order bits (§3.6: "the accuracy of
floating point ... may vary from platform to platform"), so their replies
are *inexactly* equal. This example shows:

* the ITDOS middleware voter (unmarshalled values, tolerance-based) decides
  every round;
* an Immune-style byte-by-byte voter, fed the same marshalled replies,
  cannot find f+1 identical byte strings — the paper's core §3.6 claim.

Run:  python examples/sensor_fusion.py
"""

import random

from repro.baselines.byte_voter import byte_majority_vote
from repro.giop.messages import encode_reply
from repro.workloads.generators import sensor_readings
from repro.workloads.scenarios import (
    SensorFusionServant,
    standard_repository,
)
from repro.itdos.bootstrap import ItdosSystem


def main() -> None:
    system = ItdosSystem(seed=11, repository=standard_repository(), heterogeneous=True)
    system.add_server_domain(
        "fusion", f=1, servants=lambda element: {b"fusion": SensorFusionServant()}
    )
    info = system.directory.domain("fusion")
    print("Fusion domain platforms:")
    for pid in info.element_ids:
        platform = system.directory.platform_of(pid)
        print(
            f"  {pid}: {platform.name:20s} byte_order={platform.byte_order:6s} "
            f"float_mantissa_bits={platform.float_mantissa_bits}"
        )

    client = system.add_client("operator")
    stub = client.stub(system.ref("fusion", b"fusion"))

    rng = random.Random(3)
    rounds = sensor_readings(rng, count=8, sensors=4)
    print("\nFusion rounds (every result is a middleware vote over 4 "
          "inexactly-equal replies):")
    for i, readings in enumerate(rounds):
        fused = stub.fuse(readings)
        truth = sum(r["value"] * r["weight"] for r in readings) / sum(
            r["weight"] for r in readings
        )
        print(f"  round {i}: fused={fused:.6f}  (this round's weighted mean={truth:.6f})")

    print(f"\nFinal running estimate: {stub.estimate():.6f} after {stub.rounds()} rounds")

    # Now demonstrate the byte-voting failure on the same logical value.
    print("\nByte-by-byte voting on the same reply value, as Immune would:")
    repo = standard_repository()
    value = stub.estimate()
    ballots = []
    for pid in info.element_ids:
        platform = system.directory.platform_of(pid)
        wire = encode_reply(
            repo, "SensorFusion", "estimate", request_id=1,
            result=platform.perturb_float(value),
            byte_order=platform.byte_order,
        )
        ballots.append((pid, wire))
        print(f"  {pid}: reply bytes {wire[-8:].hex()}")
    decision = byte_majority_vote(ballots, threshold=2)
    print(f"  byte-level f+1 agreement found: {decision.decided}  "
          "(the paper: byte-by-byte voting 'does not work correctly in the "
          "presence of heterogeneity')")


if __name__ == "__main__":
    main()
